//! Behavioural tests of the virtual machine: failure propagation, counter
//! bookkeeping, and the alternative machine models.

use pilut_par::{Machine, MachineModel, Payload};

#[test]
fn rank_panic_propagates_to_the_caller() {
    let result = std::panic::catch_unwind(|| {
        Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate failure on rank 1");
            }
            // Other ranks finish without waiting on rank 1.
        })
    });
    assert!(result.is_err(), "a rank panic must surface");
}

#[test]
fn counters_add_up() {
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let me = ctx.rank();
        // Ring: everyone sends 16 bytes to the right.
        ctx.send((me + 1) % 4, 1, Payload::f64s(vec![1.0, 2.0]));
        ctx.recv((me + 3) % 4, 1);
        ctx.work(100.0);
        ctx.copy_words(5.0);
    });
    assert_eq!(out.stats.messages, 4);
    assert_eq!(out.stats.bytes, 4 * 16);
    assert_eq!(out.stats.flops, 400.0);
    assert_eq!(out.stats.words_copied, 20.0);
    assert_eq!(out.stats.rank_times.len(), 4);
}

#[test]
fn zero_comm_machine_makes_messages_free() {
    let time_with = |model: MachineModel| {
        Machine::run_checked(2, model, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Payload::f64s(vec![0.0; 1000]));
            } else {
                ctx.recv(0, 0);
            }
            ctx.barrier();
            ctx.time()
        })
        .sim_time
    };
    let free = time_with(MachineModel::zero_comm());
    let t3d = time_with(MachineModel::cray_t3d());
    let cluster = time_with(MachineModel::workstation_cluster());
    assert!(free < t3d, "zero-comm {free} !< t3d {t3d}");
    assert!(t3d < cluster, "t3d {t3d} !< cluster {cluster}");
}

#[test]
fn sim_time_scales_with_modelled_work_not_wall_time() {
    // Two runs doing identical modelled work must report identical simulated
    // time even though wall time fluctuates.
    let run = || {
        Machine::run_checked(5, MachineModel::cray_t3d(), |ctx| {
            ctx.work(12345.0 * (ctx.rank() as f64 + 1.0));
            let s = ctx.all_reduce_sum(1.0);
            assert_eq!(s, 5.0);
            ctx.time()
        })
    };
    assert_eq!(run().sim_time, run().sim_time);
}

#[test]
fn exchange_with_nobody_sending_is_fine() {
    let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
        ctx.exchange(vec![]).len()
    });
    assert_eq!(out.results, vec![0, 0, 0]);
}

#[test]
fn large_fanout_exchange_delivers_everything() {
    // Every rank sends one message to every other rank.
    let p = 6;
    let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
        let me = ctx.rank();
        let sends: Vec<(usize, Payload)> = (0..p)
            .filter(|&d| d != me)
            .map(|d| (d, Payload::u64s(vec![me as u64 * 100 + d as u64])))
            .collect();
        let got = ctx.exchange(sends);
        got.into_iter()
            .map(|(src, payload)| (src, payload.into_u64()[0]))
            .collect::<Vec<_>>()
    });
    for (me, got) in out.results.iter().enumerate() {
        assert_eq!(got.len(), p - 1);
        for &(src, v) in got {
            assert_eq!(v, src as u64 * 100 + me as u64);
        }
    }
}
