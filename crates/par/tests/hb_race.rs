//! Integration tests for the happens-before match-order race detector.
//!
//! The wire contract (DESIGN §2.7) leaves the delivery order of in-flight
//! envelopes on the same `(sender, receiver, tag)` undefined, and wildcard
//! receives match whatever arrives first. Checked mode stamps every envelope
//! with a vector clock and reports any pair of candidate messages whose
//! order is not fixed by happens-before. These tests pin down both sides:
//! genuinely concurrent pairs must be reported, causally ordered pairs must
//! not, and the production (unchecked) path must carry no clocks at all.

use pilut_par::{FaultAction, FaultPlan, FaultRule, Machine, MachineModel, Payload};
use std::panic::AssertUnwindSafe;

/// Runs `f` under `run_checked`, expecting a panic, and returns the message.
fn panic_message<R, F>(p: usize, f: F) -> String
where
    R: Send,
    F: Fn(&mut pilut_par::Ctx) -> R + Sync,
{
    let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
        Machine::run_checked(p, MachineModel::cray_t3d(), f);
    }))
    .expect_err("run was expected to be diagnosed as racy");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .expect("panic payload should be a message")
}

#[test]
fn same_sender_overtaking_race_is_reported() {
    // Two back-to-back sends on one (sender, tag): nothing orders their
    // delivery, so a receiver that assumes program order is racing. The
    // report must name both envelopes and the rank that matched them.
    let msg = panic_message(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 4, Payload::u64s(vec![1]));
            ctx.send(1, 4, Payload::u64s(vec![2]));
        } else {
            ctx.recv(0, 4);
            ctx.recv(0, 4);
        }
    });
    assert!(msg.contains("match-order race"), "{msg}");
    assert!(msg.contains("tag 0x4"), "{msg}");
    assert!(msg.contains("rank 0 -> rank 1"), "{msg}");
    assert!(msg.contains("send clock"), "{msg}");
}

#[test]
fn ack_separated_resend_is_clean() {
    // Same (sender, tag) reused, but an acknowledgement round trip creates
    // the happens-before edge recv(m1) -> send(m2): no legal schedule can
    // swap them, so the detector must stay quiet.
    let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 4, Payload::u64s(vec![1]));
            ctx.recv(1, 5); // ack
            ctx.send(1, 4, Payload::u64s(vec![2]));
            vec![]
        } else {
            let a = ctx.recv(0, 4).into_u64();
            ctx.send(0, 5, Payload::Empty);
            let b = ctx.recv(0, 4).into_u64();
            vec![a[0], b[0]]
        }
    });
    assert_eq!(out.results[1], vec![1, 2]);
}

#[test]
fn barrier_separated_resend_is_clean() {
    // Collectives propagate clocks too: a barrier between the two sends
    // orders them through the reserved-tag traffic.
    let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 4, Payload::u64s(vec![1]));
            ctx.barrier();
            ctx.send(1, 4, Payload::u64s(vec![2]));
            vec![]
        } else {
            let a = ctx.recv(0, 4).into_u64();
            ctx.barrier();
            let b = ctx.recv(0, 4).into_u64();
            vec![a[0], b[0]]
        }
    });
    assert_eq!(out.results[1], vec![1, 2]);
}

#[test]
fn wildcard_recv_with_concurrent_senders_is_reported() {
    // Two ranks race to a wildcard receiver: whichever arrives first wins
    // the first match, so the program's result is schedule-dependent.
    let msg = panic_message(3, |ctx| match ctx.rank() {
        0 => {
            ctx.recv_any(6);
            ctx.recv_any(6);
        }
        _ => ctx.send(0, 6, Payload::u64s(vec![ctx.rank() as u64])),
    });
    assert!(msg.contains("match-order race"), "{msg}");
    assert!(msg.contains("tag 0x6"), "{msg}");
    assert!(msg.contains("any-source recv"), "{msg}");
}

#[test]
fn wildcard_recv_with_causal_chain_is_clean() {
    // The receiver itself relays a go-ahead between the two senders, so
    // accept(m1) happens-before send(m2) and the wildcard matches are
    // fully determined.
    let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| match ctx.rank() {
        0 => {
            let (s1, _) = ctx.recv_any(6);
            ctx.send(2, 7, Payload::Empty); // go-ahead, after the first match
            let (s2, _) = ctx.recv_any(6);
            vec![s1, s2]
        }
        1 => {
            ctx.send(0, 6, Payload::Empty);
            vec![]
        }
        _ => {
            ctx.recv(0, 7);
            ctx.send(0, 6, Payload::Empty);
            vec![]
        }
    });
    assert_eq!(out.results[0], vec![1, 2]);
}

#[test]
fn exchange_order_survives_reorder_faults() {
    // Regression for the race the detector found in the seed: `exchange`
    // used to ship each payload as its own envelope, so a reorder fault
    // could swap same-source payloads. Packing makes the per-source order
    // structural; under an aggressive reorder plan the order must hold and
    // the detector must stay quiet.
    let plan = FaultPlan::new(23).with(FaultRule::new(FaultAction::Reorder).rank(0));
    let out = Machine::builder(MachineModel::cray_t3d())
        .checked(true)
        .fault_plan(plan)
        .run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.exchange(vec![
                    (1, Payload::u64s(vec![1])),
                    (1, Payload::u64s(vec![2])),
                    (1, Payload::u64s(vec![3])),
                ]);
                vec![]
            } else {
                ctx.exchange(vec![])
                    .into_iter()
                    .map(|(_, p)| p.into_u64()[0])
                    .collect()
            }
        });
    assert_eq!(out.results[1], vec![1, 2, 3]);
}

#[test]
fn unchecked_mode_carries_no_clocks_and_reports_nothing() {
    // The same overtaking pattern that is diagnosed under checked mode runs
    // to completion on the production path: vector clocks exist only when a
    // checker is installed, so `Machine::run` stays zero-overhead and
    // never panics on behalf of the detector.
    let out = Machine::run(2, MachineModel::cray_t3d(), |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 4, Payload::u64s(vec![1]));
            ctx.send(1, 4, Payload::u64s(vec![2]));
            0
        } else {
            let a = ctx.recv(0, 4).into_u64()[0];
            let b = ctx.recv(0, 4).into_u64()[0];
            a + b
        }
    });
    assert_eq!(out.results[1], 3);
}
