//! Fault-injection acceptance tests: every fault class the injector knows
//! (delay, reorder, duplicate, drop, rank-kill, rank-stall) must drive the
//! commcheck layer to the *expected* diagnosis — benign faults complete
//! with correct results, destructive faults abort with a report that names
//! what was injected — instead of hanging or mis-reporting.

use pilut_par::{FaultAction, FaultPlan, FaultRule, Machine, MachineModel, Payload};
use std::panic::AssertUnwindSafe;
use std::time::Duration;

/// Runs `f` at `p` ranks under `plan`, expecting a panic, and returns the
/// panic message for inspection.
fn fault_panic_message<R, F>(p: usize, plan: FaultPlan, f: F) -> String
where
    R: Send,
    F: Fn(&mut pilut_par::Ctx) -> R + Sync,
{
    let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
        Machine::builder(MachineModel::cray_t3d())
            .fault_plan(plan)
            .run(p, f);
    }))
    .expect_err("faulted run was expected to be diagnosed");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .expect("panic payload should be a message")
}

/// A delayed message still arrives (matching is by `(from, tag)`), so the
/// run completes with correct data — but the receiver's logical clock
/// reflects the injected latency.
#[test]
fn delay_is_benign_and_inflates_the_clock() {
    let run = |delay: Option<f64>| {
        let mut builder = Machine::builder(MachineModel::cray_t3d()).checked(true);
        if let Some(seconds) = delay {
            builder = builder.fault_plan(
                FaultPlan::new(7).with(
                    FaultRule::new(FaultAction::Delay { seconds })
                        .rank(0)
                        .tag(3),
                ),
            );
        }
        builder.run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, Payload::f64s(vec![2.5]));
                0.0
            } else {
                let v = ctx.recv(0, 3).into_f64();
                assert_eq!(v, vec![2.5]);
                ctx.time()
            }
        })
    };
    let clean = run(None);
    let delayed = run(Some(4.0));
    assert_eq!(delayed.injected_faults.len(), 1);
    assert_eq!(delayed.injected_faults[0].kind, "delay");
    let dt = delayed.results[1] - clean.results[1];
    assert!(
        (dt - 4.0).abs() < 1e-9,
        "expected the receive clock to absorb the 4 s injected delay, got +{dt}"
    );
}

/// Reordered envelopes are benign for programs that match on `(from, tag)`:
/// the held-back message departs after a later one, but both are received
/// correctly and nothing leaks.
#[test]
fn reorder_is_benign_for_tag_matched_receives() {
    let plan = FaultPlan::new(11).with(
        FaultRule::new(FaultAction::Reorder)
            .rank(0)
            .tag(1)
            .max_fires(1),
    );
    let out = Machine::builder(MachineModel::cray_t3d())
        .fault_plan(plan)
        .run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::u64s(vec![10]));
                ctx.send(1, 2, Payload::u64s(vec![20]));
                vec![]
            } else {
                // Receive in program order; the wire order is swapped.
                let a = ctx.recv(0, 1).into_u64();
                let b = ctx.recv(0, 2).into_u64();
                vec![a[0], b[0]]
            }
        });
    assert_eq!(out.results[1], vec![10, 20]);
    assert_eq!(out.injected_faults.len(), 1);
    assert_eq!(out.injected_faults[0].kind, "reorder");
}

/// A duplicated envelope is never consumed by a correct program; the
/// message-leak sweep must report it.
#[test]
fn duplicate_is_caught_by_the_leak_sweep() {
    let plan = FaultPlan::new(3).with(
        FaultRule::new(FaultAction::Duplicate)
            .rank(0)
            .to(1)
            .tag(5)
            .max_fires(1),
    );
    let msg = fault_panic_message(2, plan, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, Payload::u64s(vec![1]));
        } else {
            ctx.recv(0, 5);
        }
    });
    assert!(msg.contains("message leak"), "{msg}");
    assert!(msg.contains("from rank 0 to rank 1 tag 0x5"), "{msg}");
}

/// A dropped envelope strands the receiver; the watchdog must terminate
/// the run with a deadlock report that names the injected drop.
#[test]
fn drop_deadlock_names_the_dropped_envelope() {
    let plan = FaultPlan::new(5).with(FaultRule::new(FaultAction::Drop).rank(0).to(1).tag(9));
    let msg = fault_panic_message(2, plan, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 9, Payload::f64s(vec![1.0]));
        } else {
            ctx.recv(0, 9);
        }
    });
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("rank 1 -> rank 0"), "{msg}");
    assert!(msg.contains("[injected drop]"), "{msg}");
    assert!(msg.contains("from rank 0 to rank 1 tag 0x9"), "{msg}");
}

/// When the receiver does not block on the dropped message (it exits
/// early), the run completes — and the leak sweep still reports the drop.
#[test]
fn drop_without_a_blocked_receiver_is_caught_at_exit() {
    let plan = FaultPlan::new(6).with(FaultRule::new(FaultAction::Drop).rank(0).to(1).tag(2));
    let msg = fault_panic_message(2, plan, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 2, Payload::Empty);
        }
        // Rank 1 never receives; without the injector this would be an
        // ordinary message leak, with it the channel is empty and only the
        // injected-drop record can tell the story.
    });
    assert!(msg.contains("message leak"), "{msg}");
    assert!(msg.contains("[injected drop]"), "{msg}");
}

/// Killing a rank that others wait on must produce a wait-for graph that
/// names the killed rank as the root cause.
#[test]
fn kill_is_named_in_the_wait_for_graph() {
    let plan = FaultPlan::new(1).with(FaultRule::new(FaultAction::Kill).rank(1).after_op(1));
    let msg = fault_panic_message(3, plan, |ctx| {
        match ctx.rank() {
            0 => {
                ctx.recv(1, 4);
            }
            1 => {
                // Op 1 sends to rank 2; op 2 (the send to rank 0) is the
                // kill point, so rank 0 starves.
                ctx.send(2, 4, Payload::Empty);
                ctx.send(0, 4, Payload::Empty);
            }
            _ => {
                ctx.recv(1, 4);
            }
        }
    });
    assert!(
        msg.contains("killed by fault injection and recovery not enabled"),
        "{msg}"
    );
    assert!(
        msg.contains("MachineBuilder::recovery(true)"),
        "the report must point at the remedy: {msg}"
    );
    assert!(msg.contains("rank 1: killed by fault injection"), "{msg}");
    assert!(
        msg.contains("rank 0 waits on rank 1, which was killed by fault injection"),
        "{msg}"
    );
}

/// A kill nobody waits on cannot deadlock anyone; the induced panic itself
/// must propagate, clearly marked as injected.
#[test]
fn kill_with_no_waiters_propagates_the_fault_panic() {
    let plan = FaultPlan::new(2).with(FaultRule::new(FaultAction::Kill).rank(1).after_op(2));
    let msg = fault_panic_message(2, plan, |ctx| {
        if ctx.rank() == 1 {
            // Op 1 satisfies rank 0's only receive; op 2 is the kill point,
            // so the extra send never leaves and nobody is left waiting.
            ctx.send(0, 8, Payload::Empty);
            ctx.send(0, 9, Payload::Empty);
        } else {
            ctx.recv(1, 8);
        }
    });
    assert!(msg.starts_with("fault-inject:"), "{msg}");
    assert!(msg.contains("rank 1 killed"), "{msg}");
}

/// A stalled rank is slow, not dead: the watchdog must not report a
/// deadlock while it sleeps, and the run must complete correctly.
#[test]
fn stall_does_not_trip_the_watchdog() {
    let plan = FaultPlan::new(4).with(
        FaultRule::new(FaultAction::Stall { millis: 30 })
            .rank(0)
            .max_fires(1),
    );
    let out = Machine::builder(MachineModel::cray_t3d())
        .fault_plan(plan)
        // Poll much faster than the stall so a false positive would fire.
        .watchdog_poll(Duration::from_millis(1))
        .run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 6, Payload::u64s(vec![77]));
                0
            } else {
                ctx.recv(0, 6).into_u64()[0]
            }
        });
    assert_eq!(out.results[1], 77);
    assert_eq!(out.injected_faults.len(), 1);
    assert_eq!(out.injected_faults[0].kind, "stall");
}

/// Faults also hit collective traffic: dropping one tree-reduce envelope
/// must end in a diagnosis, not a hang.
#[test]
fn drop_inside_a_collective_is_diagnosed() {
    let plan = FaultPlan::new(8).with(FaultRule::new(FaultAction::Drop).rank(1).max_fires(1));
    let msg = fault_panic_message(4, plan, |ctx| ctx.all_reduce_sum(1.0));
    assert!(
        msg.contains("deadlock") || msg.contains("message leak"),
        "{msg}"
    );
    assert!(msg.contains("[injected drop]"), "{msg}");
}

/// A user panic in a faulted run may be the downstream echo of a consumed
/// fault (e.g. a duplicated envelope read as fresh data); the propagated
/// payload must carry the firing log so the root cause stays attributable.
#[test]
fn user_panic_is_annotated_with_the_firing_log() {
    let plan = FaultPlan::new(13).with(
        FaultRule::new(FaultAction::Delay { seconds: 1.0 })
            .rank(0)
            .tag(4)
            .max_fires(1),
    );
    let msg = fault_panic_message(2, plan, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 4, Payload::u64s(vec![1]));
        } else {
            ctx.recv(0, 4);
            panic!("algorithm rejected the data");
        }
    });
    assert!(msg.contains("algorithm rejected the data"), "{msg}");
    assert!(
        msg.contains("note: fault injection fired 1 fault(s)"),
        "{msg}"
    );
    assert!(msg.contains("rank 0 op 1: delay"), "{msg}");
}

/// The same seed injects the same faults; a different seed diverges. This
/// is what makes chaos failures replayable.
#[test]
fn injection_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let plan = FaultPlan::new(seed)
            .with(FaultRule::new(FaultAction::Delay { seconds: 1.0 }).probability(0.5));
        let out = Machine::builder(MachineModel::cray_t3d())
            .fault_plan(plan)
            .run(4, |ctx| {
                let left = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
                let right = (ctx.rank() + 1) % ctx.nprocs();
                for round in 0..8u64 {
                    ctx.send(right, round, Payload::u64s(vec![round]));
                    ctx.recv(left, round);
                }
                ctx.time()
            });
        let mut fired: Vec<(usize, u64)> =
            out.injected_faults.iter().map(|f| (f.rank, f.op)).collect();
        fired.sort_unstable();
        (fired, out.sim_time)
    };
    let a = run(12345);
    let b = run(12345);
    assert_eq!(a, b, "same seed must replay identically");
    assert!(!a.0.is_empty(), "plan at p=0.5 over 32 sends should fire");
}
