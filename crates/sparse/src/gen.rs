//! Synthetic test-problem generators.
//!
//! The paper evaluates on two matrices we cannot obtain: **G40** (a PDE
//! discretised with centred differences on a regular 2-D grid) and **TORSO**
//! (a 3-D finite-element Laplace discretisation of the human thorax from an
//! ECG study, Klepfer et al. 1995). The generators here are the documented
//! substitutes (DESIGN.md §4): [`convection_diffusion_2d`] reproduces the
//! G40 family (regular 2-D grid, centred differences, mildly nonsymmetric),
//! and [`fem_torso`] builds an irregular 3-D problem on an ellipsoidal shell
//! domain with inhomogeneous "tissue" conductivities, which exercises the
//! same qualitative structure: an unstructured 3-D pattern with coefficient
//! jumps and a large interface/interior ratio under partitioning.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::rng::SplitMix64;

/// 5-point Laplacian on an `nx × ny` grid (Dirichlet boundary folded in).
///
/// Symmetric positive definite; row sums are positive on the boundary.
pub fn laplace_2d(nx: usize, ny: usize) -> CsrMatrix {
    convection_diffusion_2d(nx, ny, 0.0, 0.0)
}

/// Centred-difference discretisation of
/// `-Δu + cx ∂u/∂x + cy ∂u/∂y = f` on the unit square with an `nx × ny`
/// interior grid, in **unit-stencil scaling** (the equation multiplied
/// through by `h²`, as the paper-era test matrices are assembled): the
/// diagonal is `4`, off-diagonals `-1 ± cx·h/2` — so entry magnitudes are
/// `O(1)` and the relative ILUT threshold behaves as in the paper. Nonzero
/// convection makes the matrix nonsymmetric, which is what GMRES is for.
pub fn convection_diffusion_2d(nx: usize, ny: usize, cx: f64, cy: f64) -> CsrMatrix {
    assert!(nx >= 1 && ny >= 1);
    let n = nx * ny;
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let idx = |i: usize, j: usize| j * nx + i;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let (ax, ay) = (1.0, 1.0);
    // Centred first-derivative contributions (half the cell Péclet number).
    let bx = cx * hx / 2.0;
    let by = cy * hy / 2.0;
    for j in 0..ny {
        for i in 0..nx {
            let r = idx(i, j);
            coo.push(r, r, 2.0 * ax + 2.0 * ay);
            if i > 0 {
                coo.push(r, idx(i - 1, j), -ax - bx);
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -ax + bx);
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -ay - by);
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -ay + by);
            }
        }
    }
    coo.to_csr()
}

/// 7-point Laplacian on an `nx × ny × nz` grid.
pub fn laplace_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let r = idx(i, j, k);
                coo.push(r, r, 6.0);
                if i > 0 {
                    coo.push(r, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    coo.push(r, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push(r, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    coo.push(r, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.push(r, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    coo.push(r, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// Irregular 3-D "torso" problem: Laplace's equation with inhomogeneous
/// conductivities on an ellipsoidal shell domain, discretised on the subset
/// of a `dim³` grid lying inside the outer ellipsoid, with harmonic
/// averaging of the per-region conductivity across faces. Node numbering is
/// randomised (seeded) to mimic an unstructured finite-element mesh ordering.
///
/// Regions (nested ellipsoids scaled by the given fractions of the domain):
/// "skin/muscle" (outer, σ=1), "lungs" (σ=0.04 — low conductivity), and a
/// "heart" core (σ=5). These ratios follow the ECG modelling literature the
/// paper's TORSO matrix comes from.
pub fn fem_torso(dim: usize, seed: u64) -> CsrMatrix {
    assert!(dim >= 3);
    let inside = |i: usize, j: usize, k: usize, sx: f64, sy: f64, sz: f64| -> bool {
        let c = (dim as f64 - 1.0) / 2.0;
        let x = (i as f64 - c) / (c * sx);
        let y = (j as f64 - c) / (c * sy);
        let z = (k as f64 - c) / (c * sz);
        x * x + y * y + z * z <= 1.0
    };
    // Conductivity by region; outermost ellipsoid defines the domain.
    let sigma = |i: usize, j: usize, k: usize| -> Option<f64> {
        if !inside(i, j, k, 1.0, 0.75, 1.0) {
            return None; // outside the torso
        }
        if inside(i, j, k, 0.25, 0.2, 0.25) {
            Some(5.0) // heart
        } else if inside(i, j, k, 0.6, 0.45, 0.7) {
            Some(0.04) // lungs
        } else {
            Some(1.0) // muscle/skin shell
        }
    };
    let lin = |i: usize, j: usize, k: usize| (k * dim + j) * dim + i;
    // Collect domain nodes.
    let mut grid_to_node = vec![usize::MAX; dim * dim * dim];
    let mut nodes: Vec<(usize, usize, usize)> = Vec::new();
    for k in 0..dim {
        for j in 0..dim {
            for i in 0..dim {
                if sigma(i, j, k).is_some() {
                    grid_to_node[lin(i, j, k)] = nodes.len();
                    nodes.push((i, j, k));
                }
            }
        }
    }
    let n = nodes.len();
    assert!(n > 0, "torso domain is empty at dim={dim}");
    // Random renumbering (unstructured-mesh surrogate).
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut renum = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        renum[old] = new;
    }
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let neighbours: [(isize, isize, isize); 6] = [
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ];
    for (old, &(i, j, k)) in nodes.iter().enumerate() {
        let r = renum[old];
        // lint: allow(unwrap): (i, j, k) ranges over the grid interior
        let si = sigma(i, j, k).unwrap();
        let mut diag = 0.0;
        for &(di, dj, dk) in &neighbours {
            let (ni, nj, nk) = (i as isize + di, j as isize + dj, k as isize + dk);
            if ni < 0 || nj < 0 || nk < 0 {
                // Dirichlet wall of the bounding box: contributes own sigma.
                diag += si;
                continue;
            }
            let (ni, nj, nk) = (ni as usize, nj as usize, nk as usize);
            if ni >= dim || nj >= dim || nk >= dim {
                diag += si;
                continue;
            }
            match sigma(ni, nj, nk) {
                Some(sj) => {
                    // Harmonic mean across the interface face.
                    let w = 2.0 * si * sj / (si + sj);
                    diag += w;
                    let c = renum[grid_to_node[lin(ni, nj, nk)]];
                    coo.push(r, c, -w);
                }
                None => {
                    // Domain boundary: Dirichlet, folded into the diagonal.
                    diag += si;
                }
            }
        }
        coo.push(r, r, diag);
    }
    coo.to_csr()
}

/// A random strictly diagonally dominant matrix with roughly `nnz_per_row`
/// off-diagonal entries per row; handy for property tests (ILUT never breaks
/// down on these).
pub fn random_diag_dominant(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SplitMix64::new(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (nnz_per_row + 1));
    for i in 0..n {
        let mut row_sum = 0.0;
        for _ in 0..nnz_per_row {
            let j = rng.next_usize(n);
            if j == i {
                continue;
            }
            let v = rng.range_f64(-1.0, 1.0);
            row_sum += v.abs();
            coo.push(i, j, v);
        }
        coo.push(i, i, row_sum + 1.0 + rng.next_f64());
    }
    coo.to_csr()
}

/// The paper's G40 stand-in at a given linear scale: a
/// `(40·scale) × (40·scale)` convection–diffusion grid. `scale = 6` gives
/// 57 600 unknowns, matching the magnitude of the paper's G40.
pub fn g40(scale: usize) -> CsrMatrix {
    let s = 40 * scale.max(1);
    convection_diffusion_2d(s, s, 10.0, 20.0)
}

/// The paper's TORSO stand-in at a given grid dimension. `dim = 64` yields
/// roughly 10⁵ unknowns (the ellipsoid fills ~40 % of the box).
pub fn torso(dim: usize) -> CsrMatrix {
    fem_torso(dim, 0x70_72_73_6f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_2d_shape() {
        let a = laplace_2d(4, 3);
        assert_eq!(a.n_rows(), 12);
        assert!(a.is_structurally_symmetric());
        // Interior row has 5 entries.
        assert_eq!(a.row_nnz(5), 5);
        // Corner row has 3 entries.
        assert_eq!(a.row_nnz(0), 3);
    }

    #[test]
    fn laplace_2d_is_diagonally_dominant() {
        let a = laplace_2d(5, 5);
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            assert!(diag >= off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn convection_makes_nonsymmetric_values() {
        let a = convection_diffusion_2d(4, 4, 30.0, 0.0);
        // Pattern stays symmetric, values do not.
        assert!(a.is_structurally_symmetric());
        let up = a.get(0, 1).unwrap();
        let down = a.get(1, 0).unwrap();
        assert!(
            (up - down).abs() > 1e-10,
            "convection should split couplings"
        );
    }

    #[test]
    fn laplace_3d_shape() {
        let a = laplace_3d(3, 3, 3);
        assert_eq!(a.n_rows(), 27);
        assert_eq!(a.row_nnz(13), 7); // centre node
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn torso_has_regions_and_is_symmetric() {
        let a = fem_torso(16, 7);
        assert!(a.n_rows() > 500, "domain too small: {}", a.n_rows());
        assert!(a.n_rows() < 16 * 16 * 16, "ellipsoid should clip the box");
        assert!(a.is_structurally_symmetric());
        // Harmonic averaging keeps the matrix an M-matrix: off-diagonals <= 0.
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j != i {
                    assert!(v <= 0.0);
                } else {
                    assert!(v > 0.0);
                }
            }
        }
    }

    #[test]
    fn torso_deterministic_for_seed() {
        assert_eq!(fem_torso(12, 3), fem_torso(12, 3));
    }

    #[test]
    fn random_matrix_dominant() {
        let a = random_diag_dominant(50, 4, 42);
        for i in 0..50 {
            let (cols, vals) = a.row(i);
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not strictly dominant");
        }
    }

    #[test]
    fn named_generators() {
        assert_eq!(g40(1).n_rows(), 1600);
        let t = torso(12);
        assert!(t.n_rows() > 100);
    }
}
