//! Coordinate-format matrix builder.

use crate::csr::CsrMatrix;

/// A sparse matrix under construction, as a list of `(row, col, value)`
/// triplets. Duplicate positions are summed when converting to CSR, which is
/// the convenient semantics for finite-element style assembly.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// An empty `n_rows x n_cols` triplet matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Like `new`, reserving space for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of triplets pushed so far (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the position is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n_rows,
            "row {row} out of range ({})",
            self.n_rows
        );
        assert!(
            col < self.n_cols,
            "col {col} out of range ({})",
            self.n_cols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Converts to CSR, summing duplicate positions and dropping entries
    /// whose accumulated value is exactly zero only if they never appeared
    /// (i.e. explicit zeros are kept — incomplete factorizations care about
    /// patterns, not just values).
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and
        // merge duplicates.
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.nnz()];
        {
            let mut next = counts.clone();
            for (k, &r) in self.rows.iter().enumerate() {
                order[next[r]] = k;
                next[r] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.nnz());
        let mut values: Vec<f64> = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..self.n_rows {
            scratch.clear();
            for &k in &order[counts[i]..counts[i + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut it = scratch.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = it.next() {
                for (c, v) in it {
                    if c == cur_c {
                        cur_v += v;
                    } else {
                        col_idx.push(cur_c);
                        values.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                col_idx.push(cur_c);
                values.push(cur_v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 0, -1.0);
        coo.push(0, 1, 5.0);
        let a = coo.to_csr();
        assert_eq!(a.get(0, 0), Some(3.0));
        assert_eq!(a.get(0, 1), Some(5.0));
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert_eq!(a.get(1, 1), None);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn keeps_explicit_zeros() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 0.0);
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), Some(0.0));
    }

    #[test]
    fn empty_rows_are_fine() {
        let coo = CooMatrix::new(3, 3);
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.n_rows(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_position() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn unsorted_input_sorts() {
        let mut coo = CooMatrix::new(2, 4);
        coo.push(1, 3, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 1, 4.0);
        let a = coo.to_csr();
        assert_eq!(a.row(1).0, &[0, 1, 3]);
        assert_eq!(a.row(1).1, &[2.0, 4.0, 1.0]);
    }
}
