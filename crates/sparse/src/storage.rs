//! The storage-generic sparse-matrix trait unifying scalar CSR and blocked
//! BCSR storage.
//!
//! Consumers that only need *logical* matrix access — row iteration,
//! triplet access, nnz accounting, matrix–vector products — should take
//! `&impl SparseStorage` (or `&dyn SparseStorage`) instead of a concrete
//! format, so the same code runs over [`CsrMatrix`] and
//! [`BcsrMatrix`](crate::bcsr::BcsrMatrix) tiles alike. Format-specific
//! internals (`row_ptr`/`col_idx`, tile arrays) stay private to this crate's
//! callers by convention, enforced by the `no-storage-poke` lint.

use crate::bcsr::BcsrMatrix;
use crate::csr::CsrMatrix;

/// Logical (storage-independent) access to a sparse matrix.
///
/// Contract: [`SparseStorage::for_each_row_entry`] visits exactly the
/// *stored* entries of a row (explicit zeros included, padding excluded) in
/// strictly ascending column order, and [`SparseStorage::nnz`] counts the
/// same population — so `to_csr` round trips are structure-preserving for
/// every implementor.
pub trait SparseStorage {
    /// Number of rows.
    fn n_rows(&self) -> usize;

    /// Number of columns.
    fn n_cols(&self) -> usize;

    /// Number of stored entries (explicit zeros count, padding does not).
    fn nnz(&self) -> usize;

    /// Visits the stored `(col, value)` entries of row `i` in ascending
    /// column order.
    fn for_each_row_entry(&self, i: usize, visit: &mut dyn FnMut(usize, f64));

    /// The stored value at `(i, j)`, if present.
    fn get(&self, i: usize, j: usize) -> Option<f64>;

    /// Computes `y = A x`.
    fn spmv_into(&self, x: &[f64], y: &mut [f64]);

    /// Materialises the matrix as scalar CSR.
    fn to_csr(&self) -> CsrMatrix;

    /// Number of stored entries in row `i` (provided: counts the visits).
    fn row_nnz(&self, i: usize) -> usize {
        let mut k = 0;
        self.for_each_row_entry(i, &mut |_, _| k += 1);
        k
    }

    /// All stored entries as `(row, col, value)` triplets in row-major
    /// order (provided).
    fn triplets(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n_rows() {
            self.for_each_row_entry(i, &mut |j, v| out.push((i, j, v)));
        }
        out
    }
}

impl SparseStorage for CsrMatrix {
    fn n_rows(&self) -> usize {
        CsrMatrix::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        CsrMatrix::n_cols(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn for_each_row_entry(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        let (cols, vals) = self.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            visit(j, v);
        }
    }

    fn get(&self, i: usize, j: usize) -> Option<f64> {
        CsrMatrix::get(self, i, j)
    }

    fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn to_csr(&self) -> CsrMatrix {
        self.clone()
    }
}

impl SparseStorage for BcsrMatrix {
    fn n_rows(&self) -> usize {
        BcsrMatrix::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        BcsrMatrix::n_cols(self)
    }

    fn nnz(&self) -> usize {
        BcsrMatrix::nnz(self)
    }

    fn for_each_row_entry(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        let b = self.block_size();
        let bb = b * b;
        let bi = i / b;
        let r = i - bi * b;
        let (bcols, tiles) = self.block_row(bi);
        let masks = self.block_row_masks(bi);
        for (t, &bc) in bcols.iter().enumerate() {
            let mask = masks[t];
            for c in 0..b {
                if mask & (1 << (r * b + c)) != 0 {
                    visit(bc * b + c, tiles[t * bb + r * b + c]);
                }
            }
        }
    }

    fn get(&self, i: usize, j: usize) -> Option<f64> {
        BcsrMatrix::get(self, i, j)
    }

    fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }

    fn to_csr(&self) -> CsrMatrix {
        BcsrMatrix::to_csr(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn storage_views(
        a: &CsrMatrix,
        b: usize,
    ) -> (Vec<(usize, usize, f64)>, Vec<(usize, usize, f64)>) {
        let blocked = BcsrMatrix::from_csr(a, b);
        (SparseStorage::triplets(a), blocked.triplets())
    }

    #[test]
    fn csr_and_bcsr_agree_through_the_trait() {
        let a = gen::convection_diffusion_2d(5, 7, 1.5, -0.5); // n = 35
        for b in 1..=4 {
            let (want, got) = storage_views(&a, b);
            assert_eq!(want, got, "b={b}");
        }
    }

    #[test]
    fn trait_spmv_and_counts_agree() {
        let a = gen::laplace_2d(6, 6);
        let blocked = BcsrMatrix::from_csr(&a, 4);
        assert_eq!(SparseStorage::nnz(&a), SparseStorage::nnz(&blocked));
        for i in 0..SparseStorage::n_rows(&a) {
            assert_eq!(
                SparseStorage::row_nnz(&a, i),
                SparseStorage::row_nnz(&blocked, i)
            );
        }
        let x: Vec<f64> = (0..a.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut y1 = vec![0.0; a.n_rows()];
        let mut y2 = y1.clone();
        SparseStorage::spmv_into(&a, &x, &mut y1);
        SparseStorage::spmv_into(&blocked, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let a = gen::laplace_2d(3, 3);
        let blocked = BcsrMatrix::from_csr(&a, 2);
        let dyns: Vec<&dyn SparseStorage> = vec![&a, &blocked];
        for m in dyns {
            assert_eq!(m.n_rows(), 9);
            assert_eq!(m.to_csr().nnz(), m.nnz());
        }
    }
}
