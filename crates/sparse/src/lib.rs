//! Sparse-matrix substrate for the `pilut` workspace.
//!
//! The SC'97 paper builds on SPARSKIT-style compressed sparse row kernels;
//! this crate provides that substrate from scratch:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with the kernels the
//!   factorization and solver layers need (SpMV, transpose, permutation,
//!   row norms, pattern queries),
//! * [`CooMatrix`] — a coordinate-format builder,
//! * [`WorkRow`] — the full-length working row with a companion nonzero
//!   pointer list used by the ILUT elimination loop (paper §2.1),
//! * [`gen`] — synthetic problem generators standing in for the paper's
//!   G40 and TORSO matrices (see DESIGN.md §4),
//! * [`io`] — Matrix Market coordinate-format reader/writer,
//! * [`Permutation`] — row/column reorderings and their inverses,
//! * [`rng`] — a seeded SplitMix64 generator so the workspace carries no
//!   external `rand` dependency and builds fully offline.

pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod permute;
pub mod rng;
pub mod stats;
pub mod vec_ops;
pub mod workrow;

pub use coo::CooMatrix;
pub use csr::{CsrLayoutError, CsrMatrix};
pub use permute::Permutation;
pub use rng::SplitMix64;
pub use stats::MatrixStats;
pub use workrow::WorkRow;
