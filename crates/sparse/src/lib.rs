//! Sparse-matrix substrate for the `pilut` workspace.
//!
//! The SC'97 paper builds on SPARSKIT-style compressed sparse row kernels;
//! this crate provides that substrate from scratch:
//!
//! * [`SparseStorage`] — the storage-generic trait (row iteration, triplet
//!   access, nnz accounting) every matrix format implements,
//! * [`CsrMatrix`] — compressed sparse row storage with the kernels the
//!   factorization and solver layers need (SpMV, transpose, permutation,
//!   row norms, pattern queries),
//! * [`BcsrMatrix`] — block CSR with small dense tiles and per-tile
//!   occupancy masks (lossless CSR round trip), feeding the blocked
//!   factorization's dense micro-kernels,
//! * [`tile`] — the `b × b` dense tile micro-kernels (rank-k update, small
//!   LU, tile-inverse application, panel solves),
//! * [`CooMatrix`] — a coordinate-format builder,
//! * [`WorkRow`] — the full-length working row with a companion nonzero
//!   pointer list used by the ILUT elimination loop (paper §2.1), and
//!   [`LanedRow`] — its width-generalised core whose positions hold dense
//!   tiles for the blocked elimination,
//! * [`gen`] — synthetic problem generators standing in for the paper's
//!   G40 and TORSO matrices (see DESIGN.md §4),
//! * [`io`] — Matrix Market coordinate-format reader/writer,
//! * [`Permutation`] — row/column reorderings and their inverses,
//! * [`rng`] — a seeded SplitMix64 generator so the workspace carries no
//!   external `rand` dependency and builds fully offline.

pub mod bcsr;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod permute;
pub mod rng;
pub mod stats;
pub mod storage;
pub mod tile;
pub mod vec_ops;
pub mod workrow;

pub use bcsr::BcsrMatrix;
pub use coo::CooMatrix;
pub use csr::{CsrLayoutError, CsrMatrix};
pub use permute::Permutation;
pub use rng::SplitMix64;
pub use stats::MatrixStats;
pub use storage::SparseStorage;
pub use workrow::{LanedRow, WorkRow};
