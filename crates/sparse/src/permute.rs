//! Permutations of matrix/vector index sets.

/// A permutation of `0..n`, stored in both directions.
///
/// `new_of(old)` answers "where does old index `old` go?", and
/// `old_of(new)` answers "which old index sits at position `new`?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_of: Vec<usize>,
    old_of: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Permutation {
            new_of: v.clone(),
            old_of: v,
        }
    }

    /// Builds from a `new_of` map (`new_of[old] = new`).
    ///
    /// # Panics
    /// Panics if the slice is not a permutation of `0..len`.
    pub fn from_new_order(new_of: &[usize]) -> Self {
        let n = new_of.len();
        let mut old_of = vec![usize::MAX; n];
        for (old, &new) in new_of.iter().enumerate() {
            assert!(new < n, "index {new} out of range");
            assert!(old_of[new] == usize::MAX, "duplicate target index {new}");
            old_of[new] = old;
        }
        Permutation {
            new_of: new_of.to_vec(),
            old_of,
        }
    }

    /// Builds from an `old_of` map (`old_of[new] = old`), i.e. the order in
    /// which old indices should be listed.
    pub fn from_old_order(old_of: &[usize]) -> Self {
        let p = Self::from_new_order(old_of);
        Permutation {
            new_of: p.old_of,
            old_of: p.new_of,
        }
    }

    /// Number of elements permuted.
    pub fn len(&self) -> usize {
        self.new_of.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of.is_empty()
    }

    /// New position of old index `old`.
    pub fn new_of(&self, old: usize) -> usize {
        self.new_of[old]
    }

    /// Old index at new position `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.old_of[new]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_of: self.old_of.clone(),
            old_of: self.new_of.clone(),
        }
    }

    /// Applies to a dense vector: `out[new_of(i)] = x[i]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![0.0; x.len()];
        for (old, &v) in x.iter().enumerate() {
            out[self.new_of[old]] = v;
        }
        out
    }

    /// Undoes `apply_vec`.
    pub fn unapply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![0.0; x.len()];
        for (new, &v) in x.iter().enumerate() {
            out[self.old_of[new]] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert_eq!(p.new_of(2), 2);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.apply_vec(&x), x.to_vec());
    }

    #[test]
    fn from_orders_agree() {
        // old order [2, 0, 1] means: position 0 holds old 2, etc.
        let p = Permutation::from_old_order(&[2, 0, 1]);
        assert_eq!(p.old_of(0), 2);
        assert_eq!(p.new_of(2), 0);
        let q = Permutation::from_new_order(&[1, 2, 0]);
        assert_eq!(p, q);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_new_order(&[3, 1, 0, 2]);
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.new_of(p.new_of(i)), i);
        }
    }

    #[test]
    fn vec_roundtrip() {
        let p = Permutation::from_new_order(&[2, 0, 1]);
        let x = [10.0, 20.0, 30.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![20.0, 30.0, 10.0]);
        assert_eq!(p.unapply_vec(&y), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_permutation() {
        Permutation::from_new_order(&[0, 0, 1]);
    }
}
