//! Matrix Market coordinate-format I/O.
//!
//! Supports `matrix coordinate real {general|symmetric}` — the format the
//! paper-era test matrices (Harwell–Boeing successors) ship in. Symmetric
//! files are expanded to full storage on read.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    /// Malformed header/body with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(s) => write!(f, "Matrix Market parse error: {s}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a matrix from a Matrix Market stream.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_ascii_lowercase())
        .collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(parse_err(format!("bad header line: {header:?}")));
    }
    if h[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    if h[3] != "real" && h[3] != "integer" {
        return Err(parse_err(format!("unsupported field type {:?}", h[3])));
    }
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry {other:?}"))),
    };
    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let mut it = size_line.split_whitespace();
    let n_rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad row count"))?;
    let n_cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad col count"))?;
    let nnz: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad nnz count"))?;
    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {t:?}")))?;
        let j: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {t:?}")))?;
        let v: f64 = match it.next() {
            Some(s) => s
                .parse()
                .map_err(|_| parse_err(format!("bad value in {t:?}")))?,
            None => 1.0, // pattern-style line
        };
        if i == 0 || j == 0 || i > n_rows || j > n_cols {
            return Err(parse_err(format!("entry ({i},{j}) out of range")));
        }
        coo.push(i - 1, j - 1, v);
        if symmetric && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Writes a matrix in `matrix coordinate real general` form.
pub fn write_matrix_market<W: Write>(matrix: &CsrMatrix, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.n_rows(),
        matrix.n_cols(),
        matrix.nnz()
    )?;
    for i in 0..matrix.n_rows() {
        let (cols, vals) = matrix.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            writeln!(writer, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

/// Convenience: read from a file path.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Convenience: write to a file path.
pub fn write_matrix_market_file(matrix: &CsrMatrix, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_matrix_market(matrix, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_general() {
        let a = gen::convection_diffusion_2d(5, 4, 3.0, -1.0);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a.n_rows(), b.n_rows());
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.n_rows() {
            let (ca, va) = a.row(i);
            let (cb, vb) = b.row(i);
            assert_eq!(ca, cb);
            for (x, y) in va.iter().zip(vb) {
                assert!((x - y).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn reads_symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    2 2 2.0\n\
                    3 3 2.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 1), Some(-1.0));
        assert_eq!(a.get(1, 0), Some(-1.0));
    }

    #[test]
    fn rejects_bad_header() {
        let text = "%%NotMatrixMarket nope\n1 1 0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = gen::laplace_2d(3, 3);
        let dir = std::env::temp_dir().join("pilut_io_test.mtx");
        write_matrix_market_file(&a, &dir).unwrap();
        let b = read_matrix_market_file(&dir).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        let _ = std::fs::remove_file(&dir);
    }
}
