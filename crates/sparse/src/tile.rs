//! Dense tile micro-kernels for the blocked (BCSR) storage and the blocked
//! factorization/trisolve layers built on it.
//!
//! A *tile* is a small `b × b` dense matrix stored row-major in a `&[f64]`
//! of length `b²`, with `b ≤ 4` ([`MAX_BLOCK`]). Every kernel here is a
//! straight-line dense loop — no index arrays in the inner loop — so the
//! compiler can keep the tile in registers and vectorize; the public entry
//! points dispatch on `b` to monomorphized const-generic bodies for the
//! supported block sizes.
//!
//! Invariants shared by all kernels (the "micro-kernel contract"):
//!
//! * tiles are row-major, entry `(r, c)` at `t[r*b + c]`;
//! * kernels never allocate and never branch on values (except the pivot
//!   checks in [`lu_factor`]), so their flop count is a function of `b`
//!   alone — the cost-model hooks can price them exactly;
//! * for `b = 1` every kernel degenerates to the scalar operation with the
//!   *same floating-point expression tree* (e.g. [`lu_right_solve`] is one
//!   division), which is what makes the blocked ILUT bitwise-identical to
//!   the scalar one at block size 1.

/// Largest supported tile dimension (the occupancy masks in
/// [`crate::bcsr::BcsrMatrix`] are `u16`, one bit per tile slot).
pub const MAX_BLOCK: usize = 4;

#[inline(always)]
fn gemm_sub_fixed<const B: usize>(c: &mut [f64], a: &[f64], x: &[f64]) {
    for i in 0..B {
        for k in 0..B {
            let aik = a[i * B + k];
            for j in 0..B {
                c[i * B + j] -= aik * x[k * B + j];
            }
        }
    }
}

/// Rank-`b` tile update `C -= A · X` on `b × b` row-major tiles.
///
/// This is the inner kernel of the blocked ILUT elimination: the working
/// row's tile at column `j` absorbs `-M · U_kj`.
#[inline]
pub fn gemm_sub(b: usize, c: &mut [f64], a: &[f64], x: &[f64]) {
    match b {
        1 => c[0] -= a[0] * x[0],
        2 => gemm_sub_fixed::<2>(c, a, x),
        3 => gemm_sub_fixed::<3>(c, a, x),
        4 => gemm_sub_fixed::<4>(c, a, x),
        _ => {
            for i in 0..b {
                for k in 0..b {
                    let aik = a[i * b + k];
                    for j in 0..b {
                        c[i * b + j] -= aik * x[k * b + j];
                    }
                }
            }
        }
    }
}

#[inline(always)]
fn matvec_sub_fixed<const B: usize>(y: &mut [f64], a: &[f64], x: &[f64]) {
    for i in 0..B {
        let mut s = y[i];
        for j in 0..B {
            s -= a[i * B + j] * x[j];
        }
        y[i] = s;
    }
}

/// Tile–vector update `y -= A · x` (`y`, `x` of length `b`).
///
/// The inner kernel of the blocked triangular sweeps.
#[inline]
pub fn matvec_sub(b: usize, y: &mut [f64], a: &[f64], x: &[f64]) {
    match b {
        1 => y[0] -= a[0] * x[0],
        2 => matvec_sub_fixed::<2>(y, a, x),
        3 => matvec_sub_fixed::<3>(y, a, x),
        4 => matvec_sub_fixed::<4>(y, a, x),
        _ => {
            for i in 0..b {
                let mut s = y[i];
                for j in 0..b {
                    s -= a[i * b + j] * x[j];
                }
                y[i] = s;
            }
        }
    }
}

#[inline(always)]
fn panel_sub_fixed<const B: usize>(k: usize, y: &mut [f64], a: &[f64], x: &[f64]) {
    for i in 0..B {
        for j in 0..B {
            let aij = a[i * B + j];
            let (yrow, xrow) = (i * k, j * k);
            for c in 0..k {
                y[yrow + c] -= aij * x[xrow + c];
            }
        }
    }
}

/// Tile–panel update `Y -= A · X` where `Y` and `X` are `b × k` row-major
/// panels (`k` right-hand sides side by side).
///
/// Column `c` of the panel sees exactly the arithmetic [`matvec_sub`] would
/// apply to it in isolation, so a panel solve is bitwise-identical to `k`
/// independent single-vector solves.
#[inline]
pub fn panel_sub(b: usize, k: usize, y: &mut [f64], a: &[f64], x: &[f64]) {
    match b {
        1 => {
            let a00 = a[0];
            for c in 0..k {
                y[c] -= a00 * x[c];
            }
        }
        2 => panel_sub_fixed::<2>(k, y, a, x),
        3 => panel_sub_fixed::<3>(k, y, a, x),
        4 => panel_sub_fixed::<4>(k, y, a, x),
        _ => {
            for i in 0..b {
                for j in 0..b {
                    let aij = a[i * b + j];
                    for c in 0..k {
                        y[i * k + c] -= aij * x[j * k + c];
                    }
                }
            }
        }
    }
}

/// Factors a `b × b` tile in place into `L\U` (Doolittle, no pivoting: unit
/// lower multipliers below the diagonal, `U` on and above).
///
/// No pivoting is deliberate: the scalar ILUT divides by the diagonal as-is,
/// and the blocked factorization must reduce to it bitwise at `b = 1`;
/// unusable pivots are a *breakdown*, resolved by the caller's
/// `PivotDoctor` policy, not silently permuted away. On an exactly-zero or
/// non-finite pivot, returns `Err(lane)` with the offending lane index; the
/// tile is left partially factored and must be rebuilt before retrying.
pub fn lu_factor(b: usize, t: &mut [f64]) -> Result<(), usize> {
    for k in 0..b {
        let piv = t[k * b + k];
        // lint: allow(float-eq): exact zero-pivot test, as in the scalar kernels
        if !piv.is_finite() || piv == 0.0 {
            return Err(k);
        }
        for i in k + 1..b {
            let m = t[i * b + k] / piv;
            t[i * b + k] = m;
            for j in k + 1..b {
                t[i * b + j] -= m * t[k * b + j];
            }
        }
    }
    Ok(())
}

/// Solves `A x = rhs` in place given `lu = ` [`lu_factor`]`(A)` (`x` holds
/// `rhs` on entry, the solution on exit; length `b`).
#[inline]
pub fn lu_solve_vec(b: usize, lu: &[f64], x: &mut [f64]) {
    for i in 0..b {
        let mut s = x[i];
        for j in 0..i {
            s -= lu[i * b + j] * x[j];
        }
        x[i] = s;
    }
    for i in (0..b).rev() {
        let mut s = x[i];
        for j in i + 1..b {
            s -= lu[i * b + j] * x[j];
        }
        x[i] = s / lu[i * b + i];
    }
}

/// Solves `A X = RHS` in place for a `b × k` row-major panel `X`.
///
/// Bitwise-identical to applying [`lu_solve_vec`] to each of the `k`
/// columns independently.
#[inline]
pub fn lu_solve_panel(b: usize, k: usize, lu: &[f64], x: &mut [f64]) {
    for i in 0..b {
        for j in 0..i {
            let m = lu[i * b + j];
            for c in 0..k {
                x[i * k + c] -= m * x[j * k + c];
            }
        }
    }
    for i in (0..b).rev() {
        for j in i + 1..b {
            let m = lu[i * b + j];
            for c in 0..k {
                x[i * k + c] -= m * x[j * k + c];
            }
        }
        let d = lu[i * b + i];
        for c in 0..k {
            x[i * k + c] /= d;
        }
    }
}

/// Solves `M · A = B` in place (`m` holds `B` on entry, `M = B · A⁻¹` on
/// exit) given `lu = ` [`lu_factor`]`(A)` — the tile-inverse application
/// computing the blocked ILUT multiplier `M = W_k · U_kk⁻¹`.
///
/// For `b = 1` this is exactly one division `m[0] / lu[0]`, matching the
/// scalar ILUT's `w_k / u_kk` bitwise.
#[inline]
pub fn lu_right_solve(b: usize, lu: &[f64], m: &mut [f64]) {
    for r in 0..b {
        let row = &mut m[r * b..(r + 1) * b];
        // Z = B · U⁻¹ (columns left to right).
        for j in 0..b {
            let mut s = row[j];
            for t in 0..j {
                s -= row[t] * lu[t * b + j];
            }
            row[j] = s / lu[j * b + j];
        }
        // M = Z · L⁻¹ (unit lower; columns right to left).
        for j in (0..b).rev() {
            let mut s = row[j];
            for t in j + 1..b {
                s -= row[t] * lu[t * b + j];
            }
            row[j] = s;
        }
    }
}

/// Sum of squares of a tile's entries (the squared Frobenius norm).
#[inline]
pub fn frob_sq(t: &[f64]) -> f64 {
    t.iter().map(|v| v * v).sum()
}

/// The magnitude a blocked dropping rule compares against: `|t₀₀|` for
/// `b = 1` (so the rule is bitwise the scalar one — `sqrt(x·x)` is not
/// guaranteed to round back to `|x|`), the Frobenius norm otherwise.
#[inline]
pub fn tile_mag(b: usize, t: &[f64]) -> f64 {
    if b == 1 {
        t[0].abs()
    } else {
        frob_sq(t).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn gemm_sub_matches_reference() {
        for b in 1..=4usize {
            let a: Vec<f64> = (0..b * b).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let x: Vec<f64> = (0..b * b).map(|i| (i as f64) * 0.25 + 0.5).collect();
            let mut c = vec![1.0; b * b];
            let mut want = c.clone();
            for i in 0..b {
                for j in 0..b {
                    for k in 0..b {
                        want[i * b + j] -= a[i * b + k] * x[k * b + j];
                    }
                }
            }
            gemm_sub(b, &mut c, &a, &x);
            approx(&c, &want, 1e-14);
        }
    }

    #[test]
    fn lu_factor_and_solve_invert() {
        // A diagonally dominant 4x4 tile.
        let a = [
            5.0, 1.0, 0.5, 0.0, //
            1.0, 6.0, 1.0, 0.5, //
            0.0, 1.0, 7.0, 1.0, //
            0.5, 0.0, 1.0, 8.0,
        ];
        let mut lu = a;
        lu_factor(4, &mut lu).expect("nonsingular");
        let x_true = [1.0, -2.0, 3.0, -4.0];
        let mut rhs = [0.0; 4];
        for i in 0..4 {
            for j in 0..4 {
                rhs[i] += a[i * 4 + j] * x_true[j];
            }
        }
        lu_solve_vec(4, &lu, &mut rhs);
        approx(&rhs, &x_true, 1e-12);
    }

    #[test]
    fn right_solve_is_right_division() {
        let a = [4.0, 1.0, -1.0, 3.0];
        let mut lu = a;
        lu_factor(2, &mut lu).expect("nonsingular");
        let m_true = [2.0, -1.0, 0.5, 1.5];
        // B = M_true * A.
        let mut bmat = [0.0; 4];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    bmat[i * 2 + j] += m_true[i * 2 + k] * a[k * 2 + j];
                }
            }
        }
        lu_right_solve(2, &lu, &mut bmat);
        approx(&bmat, &m_true, 1e-12);
    }

    #[test]
    fn right_solve_b1_is_one_division() {
        let mut m = [0.3];
        lu_right_solve(1, &[7.0], &mut m);
        assert_eq!(m[0], 0.3 / 7.0);
    }

    #[test]
    fn zero_pivot_reports_lane() {
        // Lane 1 pivot becomes exactly zero after eliminating lane 0.
        let mut t = [2.0, 1.0, 4.0, 2.0];
        assert_eq!(lu_factor(2, &mut t), Err(1));
        let mut nf = [f64::NAN, 0.0, 0.0, 1.0];
        assert_eq!(lu_factor(2, &mut nf), Err(0));
    }

    #[test]
    fn panel_solve_matches_columnwise_vec_solve_bitwise() {
        let a = [
            5.0, 1.0, 0.5, 0.0, //
            1.0, 6.0, 1.0, 0.5, //
            0.0, 1.0, 7.0, 1.0, //
            0.5, 0.0, 1.0, 8.0,
        ];
        let mut lu = a;
        lu_factor(4, &mut lu).expect("nonsingular");
        let k = 3;
        let panel: Vec<f64> = (0..4 * k).map(|i| (i as f64) * 0.3 - 1.7).collect();
        let mut got = panel.clone();
        lu_solve_panel(4, k, &lu, &mut got);
        for c in 0..k {
            let mut col: Vec<f64> = (0..4).map(|r| panel[r * k + c]).collect();
            lu_solve_vec(4, &lu, &mut col);
            for r in 0..4 {
                assert_eq!(got[r * k + c], col[r], "panel column {c} diverged");
            }
        }
    }

    #[test]
    fn panel_sub_matches_columnwise_matvec_bitwise() {
        let a = [1.5, -0.5, 2.0, 0.25];
        let k = 5;
        let x: Vec<f64> = (0..2 * k).map(|i| i as f64 * 0.1).collect();
        let y0: Vec<f64> = (0..2 * k).map(|i| 1.0 - i as f64 * 0.2).collect();
        let mut y = y0.clone();
        panel_sub(2, k, &mut y, &a, &x);
        for c in 0..k {
            let xc = [x[c], x[k + c]];
            let mut yc = [y0[c], y0[k + c]];
            matvec_sub(2, &mut yc, &a, &xc);
            assert_eq!(y[c], yc[0]);
            assert_eq!(y[k + c], yc[1]);
        }
    }

    #[test]
    fn tile_mag_b1_is_abs() {
        assert_eq!(tile_mag(1, &[-3.5]), 3.5);
        assert!((tile_mag(2, &[3.0, 0.0, 4.0, 0.0]) - 5.0).abs() < 1e-15);
    }
}
