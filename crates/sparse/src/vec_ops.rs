//! Small dense-vector helpers used throughout the workspace.

/// Euclidean inner product.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Max-norm of the difference between two vectors.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, -0.5]);
    }

    #[test]
    fn diff_norm() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
