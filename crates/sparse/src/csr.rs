//! Compressed sparse row matrices.

use crate::coo::CooMatrix;
use crate::permute::Permutation;

/// A sparse matrix in compressed sparse row format.
///
/// Column indices within each row are kept sorted in ascending order and
/// duplicate entries are not allowed; every constructor enforces this.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Why a set of raw CSR arrays was rejected by
/// [`CsrMatrix::try_from_raw`]. The message names the first inconsistency
/// found, with the offending row where one exists.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrLayoutError(pub String);

impl std::fmt::Display for CsrLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid CSR layout: {}", self.0)
    }
}

impl std::error::Error for CsrLayoutError {}

impl CsrMatrix {
    /// Builds a matrix from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent; use
    /// [`CsrMatrix::try_from_raw`] to validate untrusted input and get a
    /// typed error instead.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        // lint: allow(unwrap): documented panic on inconsistent raw arrays
        Self::try_from_raw(n_rows, n_cols, row_ptr, col_idx, values).expect("invalid CSR arrays")
    }

    /// Validates raw CSR arrays and builds a matrix, reporting the first
    /// inconsistency as a [`CsrLayoutError`]: `row_ptr` must have
    /// `n_rows + 1` monotone entries starting at 0 and ending at
    /// `col_idx.len()`, column indices must be in range and strictly
    /// ascending within each row, and `col_idx`/`values` must have equal
    /// length.
    pub fn try_from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, CsrLayoutError> {
        let fail = |msg: String| Err(CsrLayoutError(msg));
        if row_ptr.len() != n_rows + 1 {
            return fail(format!(
                "row_ptr has {} entries, expected n_rows + 1 = {}",
                row_ptr.len(),
                n_rows + 1
            ));
        }
        if col_idx.len() != values.len() {
            return fail(format!(
                "col_idx has {} entries but values has {}",
                col_idx.len(),
                values.len()
            ));
        }
        // lint: allow(unwrap): row_ptr has n_rows + 1 >= 1 entries, checked above
        let end = *row_ptr.last().unwrap();
        if end != col_idx.len() {
            return fail(format!(
                "row_ptr ends at {end} but col_idx has {} entries",
                col_idx.len()
            ));
        }
        if row_ptr[0] != 0 {
            return fail(format!("row_ptr starts at {}, must start at 0", row_ptr[0]));
        }
        for i in 0..n_rows {
            if row_ptr[i] > row_ptr[i + 1] {
                return fail(format!("row_ptr decreases at row {i}"));
            }
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return fail(format!(
                        "columns not strictly ascending in row {i} ({} then {})",
                        w[0], w[1]
                    ));
                }
            }
            if let Some(&last) = row.last() {
                if last >= n_cols {
                    return fail(format!(
                        "column index {last} out of range in row {i} (n_cols = {n_cols})"
                    ));
                }
            }
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An `n_rows × n_cols` matrix with no stored entries.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        CsrMatrix {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from coordinate form, summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        coo.to_csr()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (`n_rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, concatenated row-major.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, parallel to `col_idx`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (pattern stays fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The stored value at `(i, j)`, or `None` if the position is not stored.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|k| vals[k])
    }

    /// The diagonal as a dense vector (missing entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        let mut d = vec![0.0; n];
        for (i, di) in d.iter_mut().enumerate() {
            if let Some(v) = self.get(i, i) {
                *di = v;
            }
        }
        d
    }

    /// `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (i, out) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            *out = acc;
        }
    }

    /// Returns `A x` as a fresh vector.
    pub fn spmv_owned(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv(x, &mut y);
        y
    }

    /// The transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &j in &self.col_idx {
            counts[j + 1] += 1;
        }
        for j in 0..self.n_cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.n_rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let p = next[j];
                next[j] += 1;
                col_idx[p] = i;
                values[p] = v;
            }
        }
        // Rows of the transpose come out in ascending source-row order, so
        // columns are already sorted.
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// True if the nonzero *pattern* is symmetric (values may differ).
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// The union of the pattern with its transpose, keeping this matrix's
    /// values and storing explicit zeros for the added positions.
    pub fn symmetrized_pattern(&self) -> CsrMatrix {
        assert_eq!(
            self.n_rows, self.n_cols,
            "pattern symmetrisation needs a square matrix"
        );
        let t = self.transpose();
        let n = self.n_rows;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..n {
            let (ca, va) = self.row(i);
            let (cb, _) = t.row(i);
            let (mut p, mut q) = (0, 0);
            while p < ca.len() || q < cb.len() {
                let ja = ca.get(p).copied().unwrap_or(usize::MAX);
                let jb = cb.get(q).copied().unwrap_or(usize::MAX);
                if ja < jb {
                    col_idx.push(ja);
                    values.push(va[p]);
                    p += 1;
                } else if jb < ja {
                    col_idx.push(jb);
                    values.push(0.0);
                    q += 1;
                } else {
                    col_idx.push(ja);
                    values.push(va[p]);
                    p += 1;
                    q += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The 2-norm of row `i`.
    pub fn row_norm2(&self, i: usize) -> f64 {
        let (_, vals) = self.row(i);
        vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Frobenius norm of the whole matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Symmetric permutation `P A Pᵀ`: entry `(i, j)` moves to
    /// `(perm.new_of(i), perm.new_of(j))`.
    pub fn permute_symmetric(&self, perm: &Permutation) -> CsrMatrix {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(perm.len(), self.n_rows);
        let n = self.n_rows;
        let mut coo = CooMatrix::with_capacity(n, n, self.nnz());
        for i in 0..n {
            let (cols, vals) = self.row(i);
            let ni = perm.new_of(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(ni, perm.new_of(j), v);
            }
        }
        coo.to_csr()
    }

    /// Extracts the square principal submatrix on `keep` (global indices,
    /// ascending); returned matrix is indexed by position within `keep`.
    pub fn principal_submatrix(&self, keep: &[usize]) -> CsrMatrix {
        assert_eq!(self.n_rows, self.n_cols);
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        let mut to_local = vec![usize::MAX; self.n_cols];
        for (l, &g) in keep.iter().enumerate() {
            to_local[g] = l;
        }
        let mut coo = CooMatrix::new(keep.len(), keep.len());
        for (li, &gi) in keep.iter().enumerate() {
            let (cols, vals) = self.row(gi);
            for (&gj, &v) in cols.iter().zip(vals) {
                let lj = to_local[gj];
                if lj != usize::MAX {
                    coo.push(li, lj, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Scales every row to unit diagonal where possible; returns the original
    /// diagonal. Rows with a zero diagonal are left untouched.
    pub fn scale_rows_by_diagonal(&mut self) -> Vec<f64> {
        let d = self.diagonal();
        for (i, &di) in d.iter().enumerate() {
            // lint: allow(float-eq): rows with exactly zero diagonal are skipped
            if di != 0.0 {
                let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
                for v in &mut self.values[s..e] {
                    *v /= di;
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        CsrMatrix::from_raw(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, -1.0, -1.0, 4.0, -1.0, -1.0, 4.0],
        )
    }

    #[test]
    fn construction_and_access() {
        let a = small();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), Some(4.0));
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.row(1).0, &[0, 1, 2]);
        assert_eq!(a.diagonal(), vec![4.0, 4.0, 4.0]);
        assert_eq!(a.row_nnz(0), 2);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_columns() {
        CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_column() {
        CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn try_from_raw_accepts_a_valid_layout() {
        let a = CsrMatrix::try_from_raw(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![4.0, -1.0, -1.0, 4.0, -1.0, -1.0, 4.0],
        )
        .expect("layout is valid");
        assert_eq!(a.nnz(), 7);
    }

    #[test]
    fn try_from_raw_names_the_first_inconsistency() {
        let err = CsrMatrix::try_from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0])
            .expect_err("unsorted columns must be rejected");
        assert!(err.0.contains("row 0"), "{err}");
        let err = CsrMatrix::try_from_raw(2, 2, vec![0, 1], vec![1], vec![1.0])
            .expect_err("short row_ptr must be rejected");
        assert!(err.0.contains("expected n_rows + 1"), "{err}");
        let err = CsrMatrix::try_from_raw(1, 2, vec![0, 1], vec![1], vec![1.0, 2.0])
            .expect_err("length mismatch must be rejected");
        assert!(err.0.contains("values"), "{err}");
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let y = a.spmv_owned(&x);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = CsrMatrix::from_raw(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]);
        let t = a.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn structural_symmetry() {
        assert!(small().is_structurally_symmetric());
        let a = CsrMatrix::from_raw(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0]);
        assert!(!a.is_structurally_symmetric());
        let s = a.symmetrized_pattern();
        assert!(s.is_structurally_symmetric());
        assert_eq!(s.get(1, 0), Some(0.0)); // added explicit zero
        assert_eq!(s.get(0, 1), Some(2.0)); // original value kept
    }

    #[test]
    fn identity_spmv_is_noop() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.spmv_owned(&x), x.to_vec());
    }

    #[test]
    fn permute_symmetric_reverses() {
        let a = small();
        let p = Permutation::from_new_order(&[2, 1, 0]);
        let b = a.permute_symmetric(&p);
        assert_eq!(b.get(0, 0), Some(4.0));
        assert_eq!(b.get(2, 1), Some(-1.0));
        assert_eq!(b.get(0, 2), None);
        // Double reversal gives the original back.
        assert_eq!(b.permute_symmetric(&p), a);
    }

    #[test]
    fn principal_submatrix_picks_block() {
        let a = small();
        let s = a.principal_submatrix(&[0, 2]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.get(0, 0), Some(4.0));
        assert_eq!(s.get(0, 1), None); // (0,2) of A is zero
        assert_eq!(s.get(1, 1), Some(4.0));
    }

    #[test]
    fn row_norms() {
        let a = small();
        assert!((a.row_norm2(0) - (17.0f64).sqrt()).abs() < 1e-15);
        assert!((a.frobenius_norm() - (52.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn diagonal_scaling() {
        let mut a = small();
        let d = a.scale_rows_by_diagonal();
        assert_eq!(d, vec![4.0, 4.0, 4.0]);
        assert_eq!(a.get(1, 1), Some(1.0));
        assert_eq!(a.get(1, 0), Some(-0.25));
    }
}
