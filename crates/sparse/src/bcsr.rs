//! Block compressed sparse row (BCSR) storage with small dense tiles.
//!
//! The matrix is partitioned into `b × b` tiles (`b ≤ 4`); each stored tile
//! is a dense row-major `b²`-slot array plus a `u16` *occupancy mask* with
//! bit `r·b + c` set when slot `(r, c)` holds a genuine matrix entry.
//! Unoccupied slots store exactly `0.0` and exist only to keep the tile
//! dense for the micro-kernels in [`crate::tile`]; the mask is what makes
//! `CsrMatrix → BcsrMatrix → CsrMatrix` lossless — explicitly stored zeros
//! survive the round trip and padding zeros never leak out, including for
//! dimensions not divisible by the block size (the ragged last block row /
//! column simply leaves the out-of-range mask bits clear).

use crate::csr::CsrMatrix;
use crate::tile;

/// A sparse matrix stored as block rows of dense `b × b` tiles.
#[derive(Clone, Debug, PartialEq)]
pub struct BcsrMatrix {
    n_rows: usize,
    n_cols: usize,
    b: usize,
    /// Tile-row pointer: block row `bi` owns tiles `brow_ptr[bi]..brow_ptr[bi+1]`.
    brow_ptr: Vec<usize>,
    /// Block-column index per tile, strictly ascending within a block row.
    bcol_idx: Vec<usize>,
    /// Tile `t` occupies `tiles[t*b*b .. (t+1)*b*b]`, row-major.
    tiles: Vec<f64>,
    /// Occupancy mask per tile (bit `r*b + c` = slot `(r, c)` is a real entry).
    masks: Vec<u16>,
}

impl BcsrMatrix {
    /// Converts a CSR matrix to BCSR with `b × b` tiles (`1 ≤ b ≤ 4`).
    ///
    /// Lossless: [`BcsrMatrix::to_csr`] reproduces the input bit-identically
    /// (structure and values, explicit zeros included). Works for any
    /// dimensions; rows/columns past the last full block land in a ragged
    /// final tile with the padding slots masked off.
    pub fn from_csr(a: &CsrMatrix, b: usize) -> BcsrMatrix {
        assert!(
            (1..=tile::MAX_BLOCK).contains(&b),
            "block size must be in 1..={}, got {b}",
            tile::MAX_BLOCK
        );
        let (n_rows, n_cols) = (a.n_rows(), a.n_cols());
        let n_brows = n_rows.div_ceil(b);
        let n_bcols = n_cols.div_ceil(b);
        let bb = b * b;
        let mut brow_ptr = Vec::with_capacity(n_brows + 1);
        brow_ptr.push(0usize);
        let mut bcol_idx: Vec<usize> = Vec::new();
        let mut tiles: Vec<f64> = Vec::new();
        let mut masks: Vec<u16> = Vec::new();
        // Sparse-set scratch over block columns: 1 + tile index within the
        // current block row, 0 = absent.
        let mut slot = vec![0usize; n_bcols];
        let mut bcols: Vec<usize> = Vec::new();
        for bi in 0..n_brows {
            let r0 = bi * b;
            let r1 = (r0 + b).min(n_rows);
            bcols.clear();
            for i in r0..r1 {
                let (cols, _) = a.row(i);
                for &j in cols {
                    let bc = j / b;
                    if slot[bc] == 0 {
                        bcols.push(bc);
                        slot[bc] = 1; // presence only; indices assigned after sort
                    }
                }
            }
            bcols.sort_unstable();
            for (t, &bc) in bcols.iter().enumerate() {
                slot[bc] = t + 1;
            }
            let base = tiles.len();
            tiles.resize(base + bcols.len() * bb, 0.0);
            masks.resize(masks.len() + bcols.len(), 0);
            let mask_base = masks.len() - bcols.len();
            for i in r0..r1 {
                let r = i - r0;
                let (cols, vals) = a.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    let bc = j / b;
                    let t = slot[bc] - 1;
                    let c = j - bc * b;
                    tiles[base + t * bb + r * b + c] = v;
                    masks[mask_base + t] |= 1 << (r * b + c);
                }
            }
            bcol_idx.extend_from_slice(&bcols);
            brow_ptr.push(bcol_idx.len());
            for &bc in &bcols {
                slot[bc] = 0;
            }
        }
        BcsrMatrix {
            n_rows,
            n_cols,
            b,
            brow_ptr,
            bcol_idx,
            tiles,
            masks,
        }
    }

    /// Converts back to CSR, emitting exactly the mask-occupied slots —
    /// the bit-identical inverse of [`BcsrMatrix::from_csr`].
    pub fn to_csr(&self) -> CsrMatrix {
        let b = self.b;
        let bb = b * b;
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.nnz());
        let mut values: Vec<f64> = Vec::with_capacity(self.nnz());
        for i in 0..self.n_rows {
            let bi = i / b;
            let r = i - bi * b;
            let lo = self.brow_ptr[bi];
            let hi = self.brow_ptr[bi + 1];
            for t in lo..hi {
                let mask = self.masks[t];
                if mask == 0 {
                    continue;
                }
                let bc = self.bcol_idx[t];
                for c in 0..b {
                    if mask & (1 << (r * b + c)) != 0 {
                        col_idx.push(bc * b + c);
                        values.push(self.tiles[t * bb + r * b + c]);
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }

    /// Number of scalar rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of scalar columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Tile dimension `b`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Number of block rows (`⌈n_rows / b⌉`).
    pub fn n_brows(&self) -> usize {
        self.brow_ptr.len() - 1
    }

    /// Number of block columns (`⌈n_cols / b⌉`).
    pub fn n_bcols(&self) -> usize {
        self.n_cols.div_ceil(self.b)
    }

    /// Number of stored tiles.
    pub fn n_tiles(&self) -> usize {
        self.bcol_idx.len()
    }

    /// Number of genuine matrix entries (mask population count) — matches
    /// the source CSR's `nnz()` exactly.
    pub fn nnz(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Total dense slots stored (`n_tiles · b²`) — the entries the blocked
    /// kernels actually process.
    pub fn stored_len(&self) -> usize {
        self.tiles.len()
    }

    /// Fraction of stored slots holding genuine entries, in `(0, 1]`; the
    /// efficiency of this blocking (1.0 = perfectly supernodal).
    pub fn fill_ratio(&self) -> f64 {
        if self.tiles.is_empty() {
            return 1.0;
        }
        self.nnz() as f64 / self.stored_len() as f64
    }

    /// Block row `bi` as `(block_cols, tiles)`: ascending block-column
    /// indices and the matching concatenated `b²`-slot tiles.
    pub fn block_row(&self, bi: usize) -> (&[usize], &[f64]) {
        let bb = self.b * self.b;
        let lo = self.brow_ptr[bi];
        let hi = self.brow_ptr[bi + 1];
        (&self.bcol_idx[lo..hi], &self.tiles[lo * bb..hi * bb])
    }

    /// The occupancy masks of block row `bi`, parallel to
    /// [`BcsrMatrix::block_row`]'s block columns.
    pub fn block_row_masks(&self, bi: usize) -> &[u16] {
        &self.masks[self.brow_ptr[bi]..self.brow_ptr[bi + 1]]
    }

    /// The tile-row pointer array (raw storage accessor; code outside
    /// `crates/sparse` should go through [`BcsrMatrix::block_row`] or the
    /// [`crate::storage::SparseStorage`] trait instead — see the
    /// `no-storage-poke` lint).
    pub fn brow_ptr(&self) -> &[usize] {
        &self.brow_ptr
    }

    /// The block-column index array (raw storage accessor; see
    /// [`BcsrMatrix::brow_ptr`] for the access discipline).
    pub fn bcol_idx(&self) -> &[usize] {
        &self.bcol_idx
    }

    /// The concatenated tile slots (raw storage accessor; see
    /// [`BcsrMatrix::brow_ptr`] for the access discipline).
    pub fn tile_values(&self) -> &[f64] {
        &self.tiles
    }

    /// The per-tile occupancy masks (raw storage accessor; see
    /// [`BcsrMatrix::brow_ptr`] for the access discipline).
    pub fn tile_masks(&self) -> &[u16] {
        &self.masks
    }

    /// The stored entry at `(i, j)`, if the mask marks it present.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let b = self.b;
        let (bi, bc) = (i / b, j / b);
        let lo = self.brow_ptr[bi];
        let hi = self.brow_ptr[bi + 1];
        let t = lo + self.bcol_idx[lo..hi].binary_search(&bc).ok()?;
        let (r, c) = (i - bi * b, j - bc * b);
        if self.masks[t] & (1 << (r * b + c)) != 0 {
            Some(self.tiles[t * b * b + r * b + c])
        } else {
            None
        }
    }

    /// Computes `y = A x` through the dense tiles.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        let b = self.b;
        let bb = b * b;
        let mut acc = [0.0f64; tile::MAX_BLOCK];
        for bi in 0..self.n_brows() {
            let r0 = bi * b;
            let rows = (self.n_rows - r0).min(b);
            acc[..b].fill(0.0);
            let (bcols, tiles) = self.block_row(bi);
            for (t, &bc) in bcols.iter().enumerate() {
                let tl = &tiles[t * bb..(t + 1) * bb];
                let c0 = bc * b;
                let cols = (self.n_cols - c0).min(b);
                if cols == b {
                    let xs = &x[c0..c0 + b];
                    for (r, a) in acc[..b].iter_mut().enumerate() {
                        let mut s = 0.0;
                        for (c, xv) in xs.iter().enumerate() {
                            s += tl[r * b + c] * xv;
                        }
                        *a += s;
                    }
                } else {
                    // Ragged last block column: only the in-range slots.
                    for (r, a) in acc[..b].iter_mut().enumerate() {
                        for c in 0..cols {
                            *a += tl[r * b + c] * x[c0 + c];
                        }
                    }
                }
            }
            y[r0..r0 + rows].copy_from_slice(&acc[..rows]);
        }
    }

    /// Returns `A x` as a fresh vector.
    pub fn spmv_owned(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv(x, &mut y);
        y
    }

    /// Frobenius norm of block row `bi`, summing squared slots in tile
    /// order (padding slots are exact zeros and do not perturb the sum):
    /// the blocked analog of `CsrMatrix::row_norm2`, and bit-identical to
    /// it at `b = 1`.
    pub fn block_row_norm(&self, bi: usize) -> f64 {
        let (_, tiles) = self.block_row(bi);
        tile::frob_sq(tiles).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_is_bit_identical() {
        let a = gen::laplace_2d(7, 5); // n = 35, not divisible by 2 or 4
        for b in 1..=4 {
            let blocked = BcsrMatrix::from_csr(&a, b);
            assert_eq!(blocked.nnz(), a.nnz(), "b={b}");
            let back = blocked.to_csr();
            assert_eq!(back.n_rows(), a.n_rows());
            assert_eq!(back.row_ptr(), a.row_ptr(), "b={b}");
            assert_eq!(back.col_idx(), a.col_idx(), "b={b}");
            assert_eq!(back.values(), a.values(), "b={b}");
        }
    }

    #[test]
    fn explicit_zeros_survive() {
        let a = CsrMatrix::from_raw(
            3,
            3,
            vec![0, 2, 3, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 0.0, 2.0, 3.0],
        );
        let blocked = BcsrMatrix::from_csr(&a, 2);
        assert_eq!(blocked.nnz(), 4, "explicit zero is a real entry");
        assert_eq!(blocked.get(0, 2), Some(0.0));
        assert_eq!(blocked.get(0, 1), None, "padding slot is not an entry");
        let back = blocked.to_csr();
        assert_eq!(back.values(), a.values());
        assert_eq!(back.col_idx(), a.col_idx());
    }

    #[test]
    fn spmv_matches_csr() {
        let a = gen::convection_diffusion_2d(6, 5, 2.0, -1.0); // n = 30
        let x: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let want = a.spmv_owned(&x);
        for b in [1, 2, 3, 4] {
            let blocked = BcsrMatrix::from_csr(&a, b);
            let got = blocked.spmv_owned(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "b={b}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn block_row_norm_matches_scalar_at_b1() {
        let a = gen::fem_torso(4, 7);
        let blocked = BcsrMatrix::from_csr(&a, 1);
        for i in 0..a.n_rows() {
            assert_eq!(blocked.block_row_norm(i), a.row_norm2(i), "row {i}");
        }
    }

    #[test]
    fn fill_ratio_counts_padding() {
        // One entry alone in a 2x2 tile: fill 1/4.
        let a = CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![5.0]);
        let blocked = BcsrMatrix::from_csr(&a, 2);
        assert_eq!(blocked.n_tiles(), 1);
        assert!((blocked.fill_ratio() - 0.25).abs() < 1e-15);
    }
}
