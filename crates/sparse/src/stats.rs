//! Descriptive statistics of a sparse matrix — the quick health report a
//! practitioner prints before choosing factorization parameters.

use crate::csr::CsrMatrix;

/// Summary statistics of a square sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    pub n: usize,
    pub nnz: usize,
    pub avg_nnz_per_row: f64,
    pub max_nnz_per_row: usize,
    /// True if the nonzero *pattern* is symmetric.
    pub structurally_symmetric: bool,
    /// True if values are symmetric too (within `1e-12` relative).
    pub numerically_symmetric: bool,
    /// Fraction of rows that are weakly diagonally dominant.
    pub diag_dominant_fraction: f64,
    /// Number of structurally zero diagonal entries.
    pub zero_diagonals: usize,
}

impl MatrixStats {
    /// Computes the summary. `O(nnz)` plus one transpose.
    pub fn of(a: &CsrMatrix) -> MatrixStats {
        assert_eq!(
            a.n_rows(),
            a.n_cols(),
            "stats are defined for square matrices"
        );
        let n = a.n_rows();
        let t = a.transpose();
        let structurally_symmetric = a.is_structurally_symmetric();
        let mut numerically_symmetric = structurally_symmetric;
        let mut dominant_rows = 0usize;
        let mut zero_diagonals = 0usize;
        let mut max_row = 0usize;
        for i in 0..n {
            let (cols, vals) = a.row(i);
            max_row = max_row.max(cols.len());
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
                if numerically_symmetric {
                    let back = t.get(i, j).unwrap_or(0.0);
                    let scale = v.abs().max(back.abs()).max(1e-300);
                    if (v - back).abs() / scale > 1e-12 {
                        numerically_symmetric = false;
                    }
                }
            }
            // lint: allow(float-eq): counts exactly-zero or missing diagonals
            if diag == 0.0 && a.get(i, i).is_none() {
                zero_diagonals += 1;
            }
            if diag.abs() >= off {
                dominant_rows += 1;
            }
        }
        MatrixStats {
            n,
            nnz: a.nnz(),
            avg_nnz_per_row: a.nnz() as f64 / n.max(1) as f64,
            max_nnz_per_row: max_row,
            structurally_symmetric,
            numerically_symmetric,
            diag_dominant_fraction: dominant_rows as f64 / n.max(1) as f64,
            zero_diagonals,
        }
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "n = {}, nnz = {} ({:.2}/row, max {})",
            self.n, self.nnz, self.avg_nnz_per_row, self.max_nnz_per_row
        )?;
        writeln!(
            f,
            "symmetry: pattern {}, values {}",
            if self.structurally_symmetric {
                "yes"
            } else {
                "no"
            },
            if self.numerically_symmetric {
                "yes"
            } else {
                "no"
            }
        )?;
        write!(
            f,
            "diagonal dominance: {:.1}% of rows; zero diagonals: {}",
            100.0 * self.diag_dominant_fraction,
            self.zero_diagonals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn laplacian_stats() {
        let a = gen::laplace_2d(6, 6);
        let s = MatrixStats::of(&a);
        assert_eq!(s.n, 36);
        assert!(s.structurally_symmetric);
        assert!(s.numerically_symmetric);
        assert_eq!(s.diag_dominant_fraction, 1.0);
        assert_eq!(s.zero_diagonals, 0);
        assert_eq!(s.max_nnz_per_row, 5);
    }

    #[test]
    fn convection_breaks_value_symmetry_only() {
        let a = gen::convection_diffusion_2d(6, 6, 20.0, 0.0);
        let s = MatrixStats::of(&a);
        assert!(s.structurally_symmetric);
        assert!(!s.numerically_symmetric);
    }

    #[test]
    fn detects_zero_diagonals() {
        let mut coo = crate::CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 2, 1.0);
        let s = MatrixStats::of(&coo.to_csr());
        assert_eq!(s.zero_diagonals, 1);
    }

    #[test]
    fn display_is_readable() {
        let a = gen::laplace_2d(3, 3);
        let text = format!("{}", MatrixStats::of(&a));
        assert!(text.contains("n = 9"));
        assert!(text.contains("pattern yes"));
    }
}
