//! The sparse accumulator ("working row") of the ILUT elimination loop.
//!
//! The paper (§2.1) implements `w` as "a full vector … and a companion
//! pointer which points to the positions of its non-zero elements", so that
//! scatter, linear combination, and reset are all sparse operations. This is
//! exactly that data structure.

/// A full-length working row with a companion list of occupied positions.
///
/// `O(1)` scatter/lookup, `O(nnz)` iteration and reset regardless of the
/// logical length.
#[derive(Clone, Debug)]
pub struct WorkRow {
    values: Vec<f64>,
    occupied: Vec<bool>,
    nz_list: Vec<usize>,
}

impl WorkRow {
    /// A working row of logical length `n`, initially empty.
    pub fn new(n: usize) -> Self {
        WorkRow {
            values: vec![0.0; n],
            occupied: vec![false; n],
            nz_list: Vec::new(),
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.nz_list.is_empty()
    }

    /// Number of occupied positions (including ones holding exact zeros,
    /// excluding positions removed with [`WorkRow::drop_pos`]).
    pub fn nnz(&self) -> usize {
        self.nz_list.iter().filter(|&&j| self.occupied[j]).count()
    }

    /// True if position `j` is occupied.
    pub fn contains(&self, j: usize) -> bool {
        self.occupied[j]
    }

    /// The value at `j` (zero if unoccupied).
    pub fn get(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// Sets position `j` to `v`, marking it occupied.
    pub fn set(&mut self, j: usize, v: f64) {
        if !self.occupied[j] {
            self.occupied[j] = true;
            self.nz_list.push(j);
        }
        self.values[j] = v;
    }

    /// Adds `v` into position `j`, marking it occupied.
    pub fn add(&mut self, j: usize, v: f64) {
        if !self.occupied[j] {
            self.occupied[j] = true;
            self.nz_list.push(j);
            self.values[j] = v;
        } else {
            self.values[j] += v;
        }
    }

    /// Removes position `j` from the occupied set (lazily: the slot value is
    /// zeroed, the companion list is compacted on the next `clear`/`drain`).
    pub fn drop_pos(&mut self, j: usize) {
        if self.occupied[j] {
            self.occupied[j] = false;
            self.values[j] = 0.0;
        }
    }

    /// Scatters a sparse row `w[cols[k]] += scale * vals[k]`.
    pub fn axpy(&mut self, scale: f64, cols: &[usize], vals: &[f64]) {
        for (&j, &v) in cols.iter().zip(vals) {
            self.add(j, scale * v);
        }
    }

    /// The occupied positions, unsorted (insertion order, possibly holding
    /// stale entries for dropped positions — callers should use
    /// [`WorkRow::drain_sorted`] or filter with [`WorkRow::contains`]).
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.nz_list
            .iter()
            .copied()
            .filter(move |&j| self.occupied[j])
    }

    /// Extracts all occupied `(col, value)` pairs sorted by column and resets
    /// the row to empty, in `O(nnz log nnz)`.
    pub fn drain_sorted(&mut self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.nz_list.len());
        for &j in &self.nz_list {
            if self.occupied[j] {
                out.push((j, self.values[j]));
                self.occupied[j] = false;
                self.values[j] = 0.0;
            }
        }
        self.nz_list.clear();
        out.sort_unstable_by_key(|&(j, _)| j);
        out
    }

    /// Resets to empty in `O(nnz)`.
    pub fn clear(&mut self) {
        for &j in &self.nz_list {
            self.occupied[j] = false;
            self.values[j] = 0.0;
        }
        self.nz_list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_and_drain() {
        let mut w = WorkRow::new(8);
        w.set(5, 1.0);
        w.add(2, 2.0);
        w.add(5, 0.5);
        assert_eq!(w.nnz(), 2);
        assert_eq!(w.get(5), 1.5);
        assert!(!w.contains(0));
        let rows = w.drain_sorted();
        assert_eq!(rows, vec![(2, 2.0), (5, 1.5)]);
        assert!(w.is_empty());
        assert_eq!(w.get(5), 0.0);
    }

    #[test]
    fn axpy_combines() {
        let mut w = WorkRow::new(6);
        w.set(0, 1.0);
        w.axpy(-2.0, &[0, 3], &[0.5, 1.0]);
        assert_eq!(w.get(0), 0.0); // still occupied with exact zero
        assert!(w.contains(0));
        assert_eq!(w.get(3), -2.0);
        assert_eq!(w.nnz(), 2);
    }

    #[test]
    fn drop_pos_removes() {
        let mut w = WorkRow::new(4);
        w.set(1, 3.0);
        w.set(2, 4.0);
        w.drop_pos(1);
        assert!(!w.contains(1));
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.drain_sorted(), vec![(2, 4.0)]);
    }

    #[test]
    fn clear_then_reuse() {
        let mut w = WorkRow::new(4);
        w.set(0, 1.0);
        w.set(3, 2.0);
        w.clear();
        assert!(w.is_empty());
        w.set(3, 7.0);
        assert_eq!(w.drain_sorted(), vec![(3, 7.0)]);
    }

    #[test]
    fn positions_skips_dropped() {
        let mut w = WorkRow::new(5);
        w.set(4, 1.0);
        w.set(1, 1.0);
        w.drop_pos(4);
        let pos: Vec<usize> = w.positions().collect();
        assert_eq!(pos, vec![1]);
    }
}
