//! The sparse accumulator ("working row") of the ILUT elimination loop.
//!
//! The paper (§2.1) implements `w` as "a full vector … and a companion
//! pointer which points to the positions of its non-zero elements", so that
//! scatter, linear combination, and reset are all sparse operations. This is
//! exactly that data structure, realised as a *sparse set*: alongside the
//! dense value array, `slot[j]` holds `1 +` the index of `j` inside the
//! companion `nz_list` (0 = unoccupied). That makes membership, scatter,
//! *and removal* all `O(1)` and keeps `nz_list` exactly equal to the set of
//! occupied positions at all times — a drop followed by a re-scatter of the
//! same position can never leave a duplicate behind.
//!
//! The sparse-set machinery is implemented once, in [`LanedRow`], over a
//! configurable *lane width*: each logical position owns `width` contiguous
//! `f64` lanes. Width 1 is the classic scalar working row ([`WorkRow`]
//! wraps it with the scalar API); width `b²` makes each position a `b × b`
//! dense tile — the working row of the blocked ILUT, whose inner loops then
//! run the dense micro-kernels in [`crate::tile`] over the lanes.

/// A full-length working row whose positions each hold `width` contiguous
/// `f64` lanes, with a companion list of occupied positions.
///
/// `O(1)` scatter/lookup/removal, `O(nnz · width)` iteration and reset
/// regardless of the logical length. Invariant: the lanes of an unoccupied
/// position are all exactly `0.0`, so occupying a position always starts
/// from a zero tile.
#[derive(Clone, Debug)]
pub struct LanedRow {
    width: usize,
    values: Vec<f64>,
    /// `slot[j]` = index of `j` in `nz_list`, plus one; 0 when unoccupied.
    slot: Vec<usize>,
    nz_list: Vec<usize>,
}

impl LanedRow {
    /// A working row of logical length `n` with `width` lanes per position,
    /// initially empty.
    pub fn new(n: usize, width: usize) -> Self {
        assert!(width >= 1, "lane width must be at least 1");
        LanedRow {
            width,
            values: vec![0.0; n * width],
            slot: vec![0; n],
            nz_list: Vec::new(),
        }
    }

    /// Lanes per position (the `width` it was created with).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Logical length of the row (the `n` it was created with), independent
    /// of how many positions are occupied — see [`LanedRow::nnz`] for that.
    pub fn logical_len(&self) -> usize {
        self.slot.len()
    }

    /// True when no position is occupied.
    pub fn is_empty(&self) -> bool {
        self.nz_list.is_empty()
    }

    /// Number of occupied positions (including ones holding exact zeros,
    /// excluding positions removed with [`LanedRow::drop_pos`]).
    pub fn nnz(&self) -> usize {
        self.nz_list.len()
    }

    /// True if position `j` is occupied.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        self.slot[j] != 0
    }

    /// The lanes of position `j` (all zero if unoccupied).
    #[inline]
    pub fn lane(&self, j: usize) -> &[f64] {
        &self.values[j * self.width..(j + 1) * self.width]
    }

    /// Marks position `j` occupied and returns its lanes mutably; a freshly
    /// occupied position starts from all-zero lanes.
    #[inline]
    pub fn occupy(&mut self, j: usize) -> &mut [f64] {
        if self.slot[j] == 0 {
            self.nz_list.push(j);
            self.slot[j] = self.nz_list.len();
        }
        &mut self.values[j * self.width..(j + 1) * self.width]
    }

    /// Copies `src` (exactly `width` lanes) into position `j`, marking it
    /// occupied.
    #[inline]
    pub fn set_lane(&mut self, j: usize, src: &[f64]) {
        self.occupy(j).copy_from_slice(src);
    }

    /// Removes position `j` from the occupied set in `O(1)` (swap-remove
    /// from the companion list); its lanes are zeroed immediately.
    pub fn drop_pos(&mut self, j: usize) {
        let s = self.slot[j];
        if s == 0 {
            return;
        }
        let idx = s - 1;
        self.nz_list.swap_remove(idx);
        if let Some(&moved) = self.nz_list.get(idx) {
            self.slot[moved] = idx + 1;
        }
        self.slot[j] = 0;
        self.values[j * self.width..(j + 1) * self.width].fill(0.0);
    }

    /// The occupied positions, unsorted (insertion order, except that a
    /// [`LanedRow::drop_pos`] moves the most recent position into the hole).
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.nz_list.iter().copied()
    }

    /// Extracts all occupied positions sorted ascending into `cols` and
    /// their lanes, concatenated in the same order, into `lanes` (both
    /// cleared first), and resets the row to empty.
    pub fn drain_sorted_lanes_into(&mut self, cols: &mut Vec<usize>, lanes: &mut Vec<f64>) {
        cols.clear();
        lanes.clear();
        cols.extend_from_slice(&self.nz_list);
        cols.sort_unstable();
        for &j in cols.iter() {
            lanes.extend_from_slice(&self.values[j * self.width..(j + 1) * self.width]);
        }
        for &j in &self.nz_list {
            self.slot[j] = 0;
            self.values[j * self.width..(j + 1) * self.width].fill(0.0);
        }
        self.nz_list.clear();
    }

    /// Resets to empty in `O(nnz · width)`.
    pub fn clear(&mut self) {
        for &j in &self.nz_list {
            self.slot[j] = 0;
            self.values[j * self.width..(j + 1) * self.width].fill(0.0);
        }
        self.nz_list.clear();
    }
}

/// The scalar (width-1) working row of the scalar ILUT kernels: a thin
/// wrapper over [`LanedRow`] with the classic `f64`-per-position API.
///
/// `O(1)` scatter/lookup/removal, `O(nnz)` iteration and reset regardless
/// of the logical length.
#[derive(Clone, Debug)]
pub struct WorkRow {
    inner: LanedRow,
}

impl WorkRow {
    /// A working row of logical length `n`, initially empty.
    pub fn new(n: usize) -> Self {
        WorkRow {
            inner: LanedRow::new(n, 1),
        }
    }

    /// Logical length of the row (the `n` it was created with), independent
    /// of how many positions are occupied — see [`WorkRow::nnz`] for that.
    pub fn logical_len(&self) -> usize {
        self.inner.logical_len()
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of occupied positions (including ones holding exact zeros,
    /// excluding positions removed with [`WorkRow::drop_pos`]).
    pub fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    /// True if position `j` is occupied.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        self.inner.contains(j)
    }

    /// The value at `j` (zero if unoccupied).
    #[inline]
    pub fn get(&self, j: usize) -> f64 {
        self.inner.values[j]
    }

    /// Sets position `j` to `v`, marking it occupied.
    #[inline]
    pub fn set(&mut self, j: usize, v: f64) {
        self.inner.occupy(j)[0] = v;
    }

    /// Adds `v` into position `j`, marking it occupied.
    #[inline]
    pub fn add(&mut self, j: usize, v: f64) {
        if self.inner.slot[j] == 0 {
            self.inner.occupy(j)[0] = v;
        } else {
            self.inner.values[j] += v;
        }
    }

    /// Removes position `j` from the occupied set in `O(1)` (swap-remove
    /// from the companion list; the slot value is zeroed immediately).
    pub fn drop_pos(&mut self, j: usize) {
        self.inner.drop_pos(j);
    }

    /// Scatters a sparse row `w[cols[k]] += scale * vals[k]`.
    pub fn axpy(&mut self, scale: f64, cols: &[usize], vals: &[f64]) {
        for (&j, &v) in cols.iter().zip(vals) {
            self.add(j, scale * v);
        }
    }

    /// The occupied positions, unsorted (insertion order, except that a
    /// [`WorkRow::drop_pos`] moves the most recent position into the hole).
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.inner.positions()
    }

    /// Extracts all occupied `(col, value)` pairs sorted by column and resets
    /// the row to empty, in `O(nnz log nnz)`.
    pub fn drain_sorted(&mut self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.inner.nz_list.len());
        self.drain_sorted_into(&mut out);
        out
    }

    /// Like [`WorkRow::drain_sorted`] but appends into a caller-provided
    /// buffer (cleared first), so a hot loop can reuse one allocation
    /// across rows.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(usize, f64)>) {
        out.clear();
        for &j in &self.inner.nz_list {
            out.push((j, self.inner.values[j]));
            self.inner.slot[j] = 0;
            self.inner.values[j] = 0.0;
        }
        self.inner.nz_list.clear();
        out.sort_unstable_by_key(|&(j, _)| j);
    }

    /// Resets to empty in `O(nnz)`.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_and_drain() {
        let mut w = WorkRow::new(8);
        w.set(5, 1.0);
        w.add(2, 2.0);
        w.add(5, 0.5);
        assert_eq!(w.nnz(), 2);
        assert_eq!(w.get(5), 1.5);
        assert!(!w.contains(0));
        let rows = w.drain_sorted();
        assert_eq!(rows, vec![(2, 2.0), (5, 1.5)]);
        assert!(w.is_empty());
        assert_eq!(w.get(5), 0.0);
    }

    #[test]
    fn axpy_combines() {
        let mut w = WorkRow::new(6);
        w.set(0, 1.0);
        w.axpy(-2.0, &[0, 3], &[0.5, 1.0]);
        assert_eq!(w.get(0), 0.0); // still occupied with exact zero
        assert!(w.contains(0));
        assert_eq!(w.get(3), -2.0);
        assert_eq!(w.nnz(), 2);
    }

    #[test]
    fn drop_pos_removes() {
        let mut w = WorkRow::new(4);
        w.set(1, 3.0);
        w.set(2, 4.0);
        w.drop_pos(1);
        assert!(!w.contains(1));
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.drain_sorted(), vec![(2, 4.0)]);
    }

    #[test]
    fn clear_then_reuse() {
        let mut w = WorkRow::new(4);
        w.set(0, 1.0);
        w.set(3, 2.0);
        w.clear();
        assert!(w.is_empty());
        w.set(3, 7.0);
        assert_eq!(w.drain_sorted(), vec![(3, 7.0)]);
    }

    #[test]
    fn positions_skips_dropped() {
        let mut w = WorkRow::new(5);
        w.set(4, 1.0);
        w.set(1, 1.0);
        w.drop_pos(4);
        let pos: Vec<usize> = w.positions().collect();
        assert_eq!(pos, vec![1]);
    }

    /// Regression: `drop_pos(j)` followed by a re-scatter of the same `j`
    /// (the ILUT first-dropping-rule path) used to leave a duplicate entry
    /// in the companion list, making `nnz()` over-count and `positions()`
    /// yield `j` twice.
    #[test]
    fn drop_then_rescatter_does_not_duplicate() {
        let mut w = WorkRow::new(6);
        w.set(3, 1.0);
        w.set(1, 2.0);
        w.drop_pos(3);
        w.add(3, 0.25); // re-occupy the dropped position
        assert_eq!(w.nnz(), 2);
        let mut pos: Vec<usize> = w.positions().collect();
        pos.sort_unstable();
        assert_eq!(pos, vec![1, 3]);
        assert_eq!(w.drain_sorted(), vec![(1, 2.0), (3, 0.25)]);
        // And again through `set` instead of `add`.
        w.set(2, 1.0);
        w.drop_pos(2);
        w.set(2, 9.0);
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.drain_sorted(), vec![(2, 9.0)]);
    }

    /// Pins the length contract: `logical_len` is the construction-time
    /// `n`, regardless of occupancy; occupancy is `nnz` / `is_empty`.
    #[test]
    fn logical_len_is_construction_length() {
        let mut w = WorkRow::new(8);
        assert_eq!(w.logical_len(), 8);
        assert!(w.is_empty());
        assert_eq!(w.nnz(), 0);
        w.set(2, 1.0);
        assert_eq!(w.logical_len(), 8);
        assert_eq!(w.nnz(), 1);
        w.clear();
        assert_eq!(w.logical_len(), 8);
        assert!(w.is_empty());
    }

    #[test]
    fn drop_middle_keeps_slots_consistent() {
        let mut w = WorkRow::new(10);
        for j in [7, 2, 9, 4] {
            w.set(j, j as f64);
        }
        w.drop_pos(2); // middle of nz_list: exercises the swap-remove fixup
        assert_eq!(w.nnz(), 3);
        for j in [7, 9, 4] {
            assert!(w.contains(j), "lost position {j}");
            w.drop_pos(j);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn drain_sorted_into_reuses_buffer() {
        let mut w = WorkRow::new(6);
        let mut buf = vec![(0usize, 0.0f64); 4]; // stale content must be cleared
        w.set(5, 1.0);
        w.set(0, 2.0);
        w.drain_sorted_into(&mut buf);
        assert_eq!(buf, vec![(0, 2.0), (5, 1.0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn laned_tiles_scatter_and_drain() {
        let mut w = LanedRow::new(5, 4); // 2x2 tiles
        assert_eq!(w.width(), 4);
        w.set_lane(3, &[1.0, 2.0, 3.0, 4.0]);
        let t = w.occupy(0);
        t[2] = -1.0;
        assert!(w.contains(3) && w.contains(0));
        assert_eq!(w.lane(0), &[0.0, 0.0, -1.0, 0.0]);
        assert_eq!(w.lane(2), &[0.0; 4], "unoccupied lanes read as zero");
        let (mut cols, mut lanes) = (Vec::new(), Vec::new());
        w.drain_sorted_lanes_into(&mut cols, &mut lanes);
        assert_eq!(cols, vec![0, 3]);
        assert_eq!(lanes, vec![0.0, 0.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(w.is_empty());
    }

    /// The zero-lane invariant: dropping a position must zero its lanes so
    /// a later `occupy` starts from a clean tile.
    #[test]
    fn laned_drop_zeroes_lanes() {
        let mut w = LanedRow::new(3, 2);
        w.set_lane(1, &[5.0, 6.0]);
        w.drop_pos(1);
        assert!(!w.contains(1));
        let t = w.occupy(1);
        assert_eq!(t, &[0.0, 0.0]);
    }
}
