//! The sparse accumulator ("working row") of the ILUT elimination loop.
//!
//! The paper (§2.1) implements `w` as "a full vector … and a companion
//! pointer which points to the positions of its non-zero elements", so that
//! scatter, linear combination, and reset are all sparse operations. This is
//! exactly that data structure, realised as a *sparse set*: alongside the
//! dense value array, `slot[j]` holds `1 +` the index of `j` inside the
//! companion `nz_list` (0 = unoccupied). That makes membership, scatter,
//! *and removal* all `O(1)` and keeps `nz_list` exactly equal to the set of
//! occupied positions at all times — a drop followed by a re-scatter of the
//! same position can never leave a duplicate behind.

/// A full-length working row with a companion list of occupied positions.
///
/// `O(1)` scatter/lookup/removal, `O(nnz)` iteration and reset regardless
/// of the logical length.
#[derive(Clone, Debug)]
pub struct WorkRow {
    values: Vec<f64>,
    /// `slot[j]` = index of `j` in `nz_list`, plus one; 0 when unoccupied.
    slot: Vec<usize>,
    nz_list: Vec<usize>,
}

impl WorkRow {
    /// A working row of logical length `n`, initially empty.
    pub fn new(n: usize) -> Self {
        WorkRow {
            values: vec![0.0; n],
            slot: vec![0; n],
            nz_list: Vec::new(),
        }
    }

    /// Logical length of the row (the `n` it was created with), independent
    /// of how many positions are occupied — see [`WorkRow::nnz`] for that.
    pub fn logical_len(&self) -> usize {
        self.values.len()
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.nz_list.is_empty()
    }

    /// Number of occupied positions (including ones holding exact zeros,
    /// excluding positions removed with [`WorkRow::drop_pos`]).
    pub fn nnz(&self) -> usize {
        self.nz_list.len()
    }

    /// True if position `j` is occupied.
    pub fn contains(&self, j: usize) -> bool {
        self.slot[j] != 0
    }

    /// The value at `j` (zero if unoccupied).
    pub fn get(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// Sets position `j` to `v`, marking it occupied.
    pub fn set(&mut self, j: usize, v: f64) {
        if self.slot[j] == 0 {
            self.nz_list.push(j);
            self.slot[j] = self.nz_list.len();
        }
        self.values[j] = v;
    }

    /// Adds `v` into position `j`, marking it occupied.
    pub fn add(&mut self, j: usize, v: f64) {
        if self.slot[j] == 0 {
            self.nz_list.push(j);
            self.slot[j] = self.nz_list.len();
            self.values[j] = v;
        } else {
            self.values[j] += v;
        }
    }

    /// Removes position `j` from the occupied set in `O(1)` (swap-remove
    /// from the companion list; the slot value is zeroed immediately).
    pub fn drop_pos(&mut self, j: usize) {
        let s = self.slot[j];
        if s == 0 {
            return;
        }
        let idx = s - 1;
        self.nz_list.swap_remove(idx);
        if let Some(&moved) = self.nz_list.get(idx) {
            self.slot[moved] = idx + 1;
        }
        self.slot[j] = 0;
        self.values[j] = 0.0;
    }

    /// Scatters a sparse row `w[cols[k]] += scale * vals[k]`.
    pub fn axpy(&mut self, scale: f64, cols: &[usize], vals: &[f64]) {
        for (&j, &v) in cols.iter().zip(vals) {
            self.add(j, scale * v);
        }
    }

    /// The occupied positions, unsorted (insertion order, except that a
    /// [`WorkRow::drop_pos`] moves the most recent position into the hole).
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.nz_list.iter().copied()
    }

    /// Extracts all occupied `(col, value)` pairs sorted by column and resets
    /// the row to empty, in `O(nnz log nnz)`.
    pub fn drain_sorted(&mut self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(self.nz_list.len());
        self.drain_sorted_into(&mut out);
        out
    }

    /// Like [`WorkRow::drain_sorted`] but appends into a caller-provided
    /// buffer (cleared first), so a hot loop can reuse one allocation
    /// across rows.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(usize, f64)>) {
        out.clear();
        for &j in &self.nz_list {
            out.push((j, self.values[j]));
            self.slot[j] = 0;
            self.values[j] = 0.0;
        }
        self.nz_list.clear();
        out.sort_unstable_by_key(|&(j, _)| j);
    }

    /// Resets to empty in `O(nnz)`.
    pub fn clear(&mut self) {
        for &j in &self.nz_list {
            self.slot[j] = 0;
            self.values[j] = 0.0;
        }
        self.nz_list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_and_drain() {
        let mut w = WorkRow::new(8);
        w.set(5, 1.0);
        w.add(2, 2.0);
        w.add(5, 0.5);
        assert_eq!(w.nnz(), 2);
        assert_eq!(w.get(5), 1.5);
        assert!(!w.contains(0));
        let rows = w.drain_sorted();
        assert_eq!(rows, vec![(2, 2.0), (5, 1.5)]);
        assert!(w.is_empty());
        assert_eq!(w.get(5), 0.0);
    }

    #[test]
    fn axpy_combines() {
        let mut w = WorkRow::new(6);
        w.set(0, 1.0);
        w.axpy(-2.0, &[0, 3], &[0.5, 1.0]);
        assert_eq!(w.get(0), 0.0); // still occupied with exact zero
        assert!(w.contains(0));
        assert_eq!(w.get(3), -2.0);
        assert_eq!(w.nnz(), 2);
    }

    #[test]
    fn drop_pos_removes() {
        let mut w = WorkRow::new(4);
        w.set(1, 3.0);
        w.set(2, 4.0);
        w.drop_pos(1);
        assert!(!w.contains(1));
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.drain_sorted(), vec![(2, 4.0)]);
    }

    #[test]
    fn clear_then_reuse() {
        let mut w = WorkRow::new(4);
        w.set(0, 1.0);
        w.set(3, 2.0);
        w.clear();
        assert!(w.is_empty());
        w.set(3, 7.0);
        assert_eq!(w.drain_sorted(), vec![(3, 7.0)]);
    }

    #[test]
    fn positions_skips_dropped() {
        let mut w = WorkRow::new(5);
        w.set(4, 1.0);
        w.set(1, 1.0);
        w.drop_pos(4);
        let pos: Vec<usize> = w.positions().collect();
        assert_eq!(pos, vec![1]);
    }

    /// Regression: `drop_pos(j)` followed by a re-scatter of the same `j`
    /// (the ILUT first-dropping-rule path) used to leave a duplicate entry
    /// in the companion list, making `nnz()` over-count and `positions()`
    /// yield `j` twice.
    #[test]
    fn drop_then_rescatter_does_not_duplicate() {
        let mut w = WorkRow::new(6);
        w.set(3, 1.0);
        w.set(1, 2.0);
        w.drop_pos(3);
        w.add(3, 0.25); // re-occupy the dropped position
        assert_eq!(w.nnz(), 2);
        let mut pos: Vec<usize> = w.positions().collect();
        pos.sort_unstable();
        assert_eq!(pos, vec![1, 3]);
        assert_eq!(w.drain_sorted(), vec![(1, 2.0), (3, 0.25)]);
        // And again through `set` instead of `add`.
        w.set(2, 1.0);
        w.drop_pos(2);
        w.set(2, 9.0);
        assert_eq!(w.nnz(), 1);
        assert_eq!(w.drain_sorted(), vec![(2, 9.0)]);
    }

    /// Pins the length contract: `logical_len` is the construction-time
    /// `n`, regardless of occupancy; occupancy is `nnz` / `is_empty`.
    #[test]
    fn logical_len_is_construction_length() {
        let mut w = WorkRow::new(8);
        assert_eq!(w.logical_len(), 8);
        assert!(w.is_empty());
        assert_eq!(w.nnz(), 0);
        w.set(2, 1.0);
        assert_eq!(w.logical_len(), 8);
        assert_eq!(w.nnz(), 1);
        w.clear();
        assert_eq!(w.logical_len(), 8);
        assert!(w.is_empty());
    }

    #[test]
    fn drop_middle_keeps_slots_consistent() {
        let mut w = WorkRow::new(10);
        for j in [7, 2, 9, 4] {
            w.set(j, j as f64);
        }
        w.drop_pos(2); // middle of nz_list: exercises the swap-remove fixup
        assert_eq!(w.nnz(), 3);
        for j in [7, 9, 4] {
            assert!(w.contains(j), "lost position {j}");
            w.drop_pos(j);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn drain_sorted_into_reuses_buffer() {
        let mut w = WorkRow::new(6);
        let mut buf = vec![(0usize, 0.0f64); 4]; // stale content must be cleared
        w.set(5, 1.0);
        w.set(0, 2.0);
        w.drain_sorted_into(&mut buf);
        assert_eq!(buf, vec![(0, 2.0), (5, 1.0)]);
        assert!(w.is_empty());
    }
}
