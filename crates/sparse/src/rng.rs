//! A small seeded pseudo-random generator (SplitMix64) so the workspace
//! needs no external `rand` crate and stays offline-buildable.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14) passes BigCrush, has a full
//! 2⁶⁴ period over its state increments, and is four lines of code — more
//! than enough for seeded test-problem generation, node-renumbering
//! shuffles, and Luby keys. Everything is deterministic in the seed, which
//! the reproduction relies on (DESIGN.md §5: bit-identical reruns).

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_usize bound must be positive");
        // Lemire-style widening multiply avoids modulo bias well below any
        // level a test generator could notice.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` (debug builds).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of `slice`, deterministic in the seed.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_answer_matches_reference() {
        // Reference values from the public-domain SplitMix64 C code
        // (seed 1234567).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn next_usize_in_bounds() {
        let mut r = SplitMix64::new(9);
        for bound in [1usize, 2, 3, 7, 100] {
            for _ in 0..200 {
                assert!(r.next_usize(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // The stream actually spreads across the interval.
        assert!(lo < 0.05 && hi > 0.95, "lo={lo} hi={hi}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
