//! Randomized property test: `CsrMatrix → BcsrMatrix → CsrMatrix` is the
//! identity — bit for bit — for every block size, including dimensions the
//! block size does not divide and patterns containing explicit zeros.

use pilut_sparse::{BcsrMatrix, CooMatrix, CsrMatrix, SparseStorage, SplitMix64};

/// A random sparse matrix with ~`density` fill, a sprinkling of explicit
/// zeros, and sign-of-zero landmines (`-0.0` must survive the round trip).
fn random_csr(rng: &mut SplitMix64, n_rows: usize, n_cols: usize, density: f64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n_rows, n_cols);
    for i in 0..n_rows {
        for j in 0..n_cols {
            if rng.next_f64() >= density {
                continue;
            }
            let v = match rng.next_usize(8) {
                0 => 0.0,
                1 => -0.0,
                _ => rng.range_f64(-10.0, 10.0),
            };
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

fn assert_bit_identical(a: &CsrMatrix, b: &CsrMatrix, ctx: &str) {
    // Triplet equality with f64 bit comparison: PartialEq would call
    // -0.0 == 0.0, which is exactly the confusion this test exists to catch.
    let (ta, tb) = (SparseStorage::triplets(a), SparseStorage::triplets(b));
    assert_eq!(ta.len(), tb.len(), "{ctx}: nnz changed");
    for (&(ri, ci, vi), &(rj, cj, vj)) in ta.iter().zip(&tb) {
        assert_eq!((ri, ci), (rj, cj), "{ctx}: structure changed");
        assert_eq!(
            vi.to_bits(),
            vj.to_bits(),
            "{ctx}: value at ({ri},{ci}) changed: {vi} -> {vj}"
        );
    }
}

#[test]
fn random_round_trips_are_bit_identical() {
    let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
    for trial in 0..40 {
        // Dimensions deliberately not multiples of the block size most of
        // the time; occasionally rectangular.
        let n_rows = 1 + rng.next_usize(37);
        let n_cols = if trial % 4 == 0 {
            1 + rng.next_usize(37)
        } else {
            n_rows
        };
        let density = 0.02 + 0.3 * rng.next_f64();
        let a = random_csr(&mut rng, n_rows, n_cols, density);
        for b in 1..=4usize {
            let blocked = BcsrMatrix::from_csr(&a, b);
            assert_eq!(blocked.nnz(), a.nnz(), "trial {trial} b={b}");
            let back = blocked.to_csr();
            assert_bit_identical(&a, &back, &format!("trial {trial} b={b}"));
        }
    }
}

#[test]
fn empty_and_degenerate_shapes_round_trip() {
    for (n_rows, n_cols) in [(0, 0), (1, 1), (3, 1), (1, 5), (7, 7)] {
        let a = CsrMatrix::from_raw(n_rows, n_cols, vec![0; n_rows + 1], Vec::new(), Vec::new());
        for b in 1..=4usize {
            let back = BcsrMatrix::from_csr(&a, b).to_csr();
            assert_eq!(back.n_rows(), n_rows);
            assert_eq!(back.n_cols(), n_cols);
            assert_eq!(back.nnz(), 0);
        }
    }
}

#[test]
fn padding_never_materialises_entries() {
    // 5×5 with b=4: the ragged last block row/col must not invent entries.
    let mut rng = SplitMix64::new(42);
    let a = random_csr(&mut rng, 5, 5, 0.6);
    let blocked = BcsrMatrix::from_csr(&a, 4);
    assert!(blocked.stored_len() >= blocked.nnz());
    for i in 0..5 {
        for j in 0..5 {
            assert_eq!(a.get(i, j), blocked.get(i, j), "({i},{j})");
        }
    }
    assert_bit_identical(&a, &blocked.to_csr(), "ragged 5x5 b=4");
}
