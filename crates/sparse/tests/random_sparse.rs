//! Randomized property tests of the sparse substrate.
//!
//! These were proptest strategies in the seed; they are now driven by the
//! in-tree seeded [`SplitMix64`] so the test suite needs no registry
//! dependencies and every failure reproduces from the printed case seed.

use pilut_sparse::{io, CooMatrix, CsrMatrix, Permutation, SplitMix64, WorkRow};

const CASES: u64 = 64;

/// A random sparse square matrix with up to `max_n` rows and `max_nnz`
/// pushed triplets (duplicates accumulate in `to_csr`).
fn coo_matrix(rng: &mut SplitMix64, max_n: usize, max_nnz: usize) -> CsrMatrix {
    let n = 1 + rng.next_usize(max_n);
    let nnz = rng.next_usize(max_nnz + 1);
    let mut coo = CooMatrix::new(n, n);
    for _ in 0..nnz {
        let i = rng.next_usize(n);
        let j = rng.next_usize(n);
        let v = (rng.next_usize(200) as i32 - 100) as f64 / 7.0;
        coo.push(i, j, v);
    }
    coo.to_csr()
}

#[test]
fn transpose_is_involutive() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 24, 80);
        assert_eq!(a.transpose().transpose(), a, "case {case}");
    }
}

#[test]
fn transpose_preserves_nnz_and_swaps_entries() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 16, 60);
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz(), "case {case}");
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                assert_eq!(t.get(j, i), Some(v), "case {case}");
            }
        }
    }
}

#[test]
fn spmv_matches_dense_reference() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 20, 70);
        let n = a.n_cols();
        let seed = rng.next_u64() % 1000;
        let x: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 13) as f64 - 6.0)
            .collect();
        let y = a.spmv_owned(&x);
        for (i, &yi) in y.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                if let Some(v) = a.get(i, j) {
                    acc += v * xj;
                }
            }
            assert!(
                (yi - acc).abs() < 1e-9,
                "case {case} row {i}: {yi} vs {acc}"
            );
        }
    }
}

#[test]
fn symmetric_permutation_preserves_entries() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 15, 50);
        let n = a.n_rows();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let p = Permutation::from_new_order(&order);
        let b = a.permute_symmetric(&p);
        assert_eq!(b.nnz(), a.nnz(), "case {case}");
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                assert_eq!(b.get(p.new_of(i), p.new_of(j)), Some(v), "case {case}");
            }
        }
    }
}

#[test]
fn symmetrized_pattern_contains_both_directions() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 15, 50);
        let s = a.symmetrized_pattern();
        assert!(s.is_structurally_symmetric(), "case {case}");
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                assert_eq!(s.get(i, j), Some(v), "case {case}");
                assert!(s.get(j, i).is_some(), "case {case}");
            }
        }
    }
}

#[test]
fn matrix_market_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 18, 60);
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).expect("write to Vec cannot fail");
        let b = io::read_matrix_market(&buf[..]).expect("roundtrip read");
        assert_eq!(a.n_rows(), b.n_rows(), "case {case}");
        assert_eq!(a.nnz(), b.nnz(), "case {case}");
        for i in 0..a.n_rows() {
            let (ca, va) = a.row(i);
            let (cb, vb) = b.row(i);
            assert_eq!(ca, cb, "case {case}");
            for (x, y) in va.iter().zip(vb) {
                assert!((x - y).abs() < 1e-12, "case {case}");
            }
        }
    }
}

/// WorkRow behaves like a HashMap-backed sparse accumulator.
#[test]
fn workrow_matches_model() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let n_ops = rng.next_usize(200);
        let mut w = WorkRow::new(32);
        let mut model: std::collections::HashMap<usize, f64> = Default::default();
        for _ in 0..n_ops {
            let pos = rng.next_usize(32);
            let v = (rng.next_usize(100) as i32 - 50) as f64;
            if rng.next_u64() & 1 == 0 {
                w.add(pos, v);
                *model.entry(pos).or_insert(0.0) += v;
            } else {
                w.set(pos, v);
                model.insert(pos, v);
            }
        }
        let mut expect: Vec<(usize, f64)> = model.into_iter().collect();
        expect.sort_unstable_by_key(|&(c, _)| c);
        let got = w.drain_sorted();
        assert_eq!(got.len(), expect.len(), "case {case}");
        for ((gc, gv), (ec, ev)) in got.iter().zip(&expect) {
            assert_eq!(gc, ec, "case {case}");
            assert!((gv - ev).abs() < 1e-9, "case {case}");
        }
        assert!(w.is_empty(), "case {case}");
    }
}

#[test]
fn principal_submatrix_of_everything_is_identity_op() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(case);
        let a = coo_matrix(&mut rng, 12, 40);
        let keep: Vec<usize> = (0..a.n_rows()).collect();
        assert_eq!(a.principal_submatrix(&keep), a, "case {case}");
    }
}
