//! Property-based tests of the sparse substrate.

use proptest::prelude::*;
use pilut_sparse::{io, CooMatrix, CsrMatrix, Permutation, WorkRow};

/// Strategy: a random sparse square matrix as triplets.
fn coo_matrix(max_n: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -100i32..100), 0..=max_nnz).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(n, n);
                for (i, j, v) in trips {
                    coo.push(i, j, v as f64 / 7.0);
                }
                coo.to_csr()
            },
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(a in coo_matrix(24, 80)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_preserves_nnz_and_swaps_entries(a in coo_matrix(16, 60)) {
        let t = a.transpose();
        prop_assert_eq!(t.nnz(), a.nnz());
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                prop_assert_eq!(t.get(j, i), Some(v));
            }
        }
    }

    #[test]
    fn spmv_matches_dense_reference(a in coo_matrix(20, 70), seed in 0u64..1000) {
        let n = a.n_cols();
        let x: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 13) as f64 - 6.0).collect();
        let y = a.spmv_owned(&x);
        for (i, &yi) in y.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                if let Some(v) = a.get(i, j) {
                    acc += v * xj;
                }
            }
            prop_assert!((yi - acc).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_permutation_preserves_entries(a in coo_matrix(15, 50), seed in 0u64..100) {
        let n = a.n_rows();
        // Derive a permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let p = Permutation::from_new_order(&order);
        let b = a.permute_symmetric(&p);
        prop_assert_eq!(b.nnz(), a.nnz());
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                prop_assert_eq!(b.get(p.new_of(i), p.new_of(j)), Some(v));
            }
        }
    }

    #[test]
    fn symmetrized_pattern_contains_both_directions(a in coo_matrix(15, 50)) {
        let s = a.symmetrized_pattern();
        prop_assert!(s.is_structurally_symmetric());
        for i in 0..a.n_rows() {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                prop_assert_eq!(s.get(i, j), Some(v));
                prop_assert!(s.get(j, i).is_some());
            }
        }
    }

    #[test]
    fn matrix_market_roundtrip(a in coo_matrix(18, 60)) {
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).unwrap();
        let b = io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a.n_rows(), b.n_rows());
        prop_assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.n_rows() {
            let (ca, va) = a.row(i);
            let (cb, vb) = b.row(i);
            prop_assert_eq!(ca, cb);
            for (x, y) in va.iter().zip(vb) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    /// WorkRow behaves like a HashMap-backed sparse accumulator.
    #[test]
    fn workrow_matches_model(ops in proptest::collection::vec((0usize..32, -50i32..50, prop::bool::ANY), 0..200)) {
        let mut w = WorkRow::new(32);
        let mut model: std::collections::HashMap<usize, f64> = Default::default();
        for (pos, val, is_add) in ops {
            let v = val as f64;
            if is_add {
                w.add(pos, v);
                *model.entry(pos).or_insert(0.0) += v;
            } else {
                w.set(pos, v);
                model.insert(pos, v);
            }
        }
        let mut expect: Vec<(usize, f64)> = model.into_iter().collect();
        expect.sort_unstable_by_key(|&(c, _)| c);
        let got = w.drain_sorted();
        prop_assert_eq!(got.len(), expect.len());
        for ((gc, gv), (ec, ev)) in got.iter().zip(&expect) {
            prop_assert_eq!(gc, ec);
            prop_assert!((gv - ev).abs() < 1e-9);
        }
        prop_assert!(w.is_empty());
    }

    #[test]
    fn principal_submatrix_of_everything_is_identity_op(a in coo_matrix(12, 40)) {
        let keep: Vec<usize> = (0..a.n_rows()).collect();
        prop_assert_eq!(a.principal_submatrix(&keep), a);
    }
}
