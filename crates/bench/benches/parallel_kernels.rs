//! Criterion wall-clock benchmarks of the parallel kernels running on real
//! OS threads (small rank counts): the full parallel ILUT factorization,
//! the distributed triangular solve, and the distributed SpMV. These verify
//! that the implementation parallelises on actual hardware, complementing
//! the simulated-T3D table binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pilut_core::dist::spmv::{dist_spmv, SpmvPlan};
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_core::trisolve::{dist_solve, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::gen;

fn bench_par_factor(c: &mut Criterion) {
    let a = gen::convection_diffusion_2d(80, 80, 10.0, 20.0);
    let opts = IlutOptions::star(10, 1e-4, 2);
    let mut group = c.benchmark_group("par_ilut_80x80");
    group.sample_size(10);
    for p in [1usize, 2, 4] {
        let dm = DistMatrix::from_matrix(a.clone(), p, 17);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                Machine::run(p, MachineModel::cray_t3d(), |ctx| {
                    let local = dm.local_view(ctx.rank());
                    par_ilut(ctx, &dm, &local, &opts).unwrap().stats.levels
                })
            });
        });
    }
    group.finish();
}

fn bench_dist_solve_and_spmv(c: &mut Criterion) {
    let a = gen::torso(20);
    let p = 4;
    let dm = DistMatrix::from_matrix(a, p, 17);
    let opts = IlutOptions::star(10, 1e-4, 2);
    let mut group = c.benchmark_group("dist_kernels_torso20_p4");
    group.sample_size(10);
    group.bench_function("trisolve", |b| {
        b.iter(|| {
            Machine::run(p, MachineModel::cray_t3d(), |ctx| {
                let local = dm.local_view(ctx.rank());
                let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
                let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
                let bvec = vec![1.0; local.len()];
                dist_solve(ctx, &local, &rf, &plan, &bvec).len()
            })
        });
    });
    group.bench_function("spmv", |b| {
        b.iter(|| {
            Machine::run(p, MachineModel::cray_t3d(), |ctx| {
                let local = dm.local_view(ctx.rank());
                let mut plan = SpmvPlan::build(ctx, &dm, &local);
                let x = vec![1.0; local.len()];
                dist_spmv(ctx, &dm, &local, &mut plan, &x).len()
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_par_factor, bench_dist_solve_and_spmv);
criterion_main!(benches);
