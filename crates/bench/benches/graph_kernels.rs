//! Criterion benchmarks of the graph substrate: multilevel k-way
//! partitioning, Luby independent sets, and greedy colouring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pilut_graph::coloring::greedy_coloring;
use pilut_graph::mis::{luby_mis, MisOptions};
use pilut_graph::{partition_kway, Graph, PartitionOptions};
use pilut_sparse::gen;
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let a = gen::laplace_2d(100, 100);
    let g = Graph::from_csr_pattern(&a);
    let mut group = c.benchmark_group("partition_100x100");
    group.sample_size(20);
    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| partition_kway(black_box(&g), &PartitionOptions::new(k)));
        });
    }
    group.finish();
}

fn bench_mis(c: &mut Criterion) {
    let a = gen::laplace_3d(16, 16, 16);
    c.bench_function("luby_mis_16cubed", |b| {
        b.iter(|| luby_mis(black_box(&a), &MisOptions::default()));
    });
}

fn bench_coloring(c: &mut Criterion) {
    let a = gen::laplace_3d(16, 16, 16);
    let g = Graph::from_csr_pattern(&a);
    c.bench_function("greedy_coloring_16cubed", |b| {
        b.iter(|| greedy_coloring(black_box(&g)));
    });
}

criterion_group!(benches, bench_partition, bench_mis, bench_coloring);
criterion_main!(benches);
