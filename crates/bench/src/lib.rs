//! Shared harness for regenerating every table and figure of the paper
//! (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
//! recorded results).
//!
//! All timings reported by the `table*`/`fig*` binaries are **simulated
//! Cray T3D seconds** from the `pilut-par` logical-clock model; shapes
//! (speedups, algorithm ratios, crossovers) are the reproduction target, not
//! absolute values. Problem sizes scale with the `PILUT_SCALE` environment
//! variable (default 1.0 = paper-magnitude problems; use e.g. 0.5 for a
//! quick pass) and the processor list with `PILUT_PROCS` (default
//! `16,32,64,128`).

use pilut_core::dist::spmv::{dist_spmv, SpmvPlan};
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::{par_ilut, ParStats};
use pilut_core::trisolve::{dist_forward, dist_backward, TrisolvePlan};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::{gen, CsrMatrix};

/// The paper's parameter grid: m ∈ {5, 10, 20} × t ∈ {1e-2, 1e-4, 1e-6}.
pub const M_VALUES: [usize; 3] = [5, 10, 20];
pub const T_VALUES: [f64; 3] = [1e-2, 1e-4, 1e-6];
/// ILUT\* cap factor used throughout the paper's experiments.
pub const K_STAR: usize = 2;

/// Scale factor from the environment (default 1.0).
pub fn scale() -> f64 {
    std::env::var("PILUT_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Processor counts from the environment (default the paper's 16..128).
pub fn proc_list() -> Vec<usize> {
    match std::env::var("PILUT_PROCS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("PILUT_PROCS must be comma-separated integers"))
            .collect(),
        Err(_) => vec![16, 32, 64, 128],
    }
}

/// The paper's G40 stand-in at the current scale (57 600 unknowns at 1.0).
pub fn g40() -> CsrMatrix {
    let side = ((240.0 * scale().sqrt()).round() as usize).max(20);
    gen::convection_diffusion_2d(side, side, 10.0, 20.0)
}

/// The paper's TORSO stand-in at the current scale (≈10⁵ unknowns at 1.0).
pub fn torso() -> CsrMatrix {
    let dim = ((64.0 * scale().cbrt()).round() as usize).max(10);
    gen::torso(dim)
}

/// The nine (m, t) combinations of Tables 1–3, ILUT first then ILUT\*.
pub fn config_grid() -> Vec<IlutOptions> {
    let mut out = Vec::new();
    for &t in &T_VALUES {
        for &m in &M_VALUES {
            out.push(IlutOptions::new(m, t));
        }
    }
    for &t in &T_VALUES {
        for &m in &M_VALUES {
            out.push(IlutOptions::star(m, t, K_STAR));
        }
    }
    out
}

/// Measurements from one parallel factorization run.
#[derive(Clone, Debug)]
pub struct FactorRun {
    pub p: usize,
    /// Simulated parallel time, seconds.
    pub sim_time: f64,
    /// Global interface-level count (the paper's q).
    pub levels: usize,
    /// Total modelled flops across ranks.
    pub flops: f64,
    /// Total L+U fill across ranks.
    pub fill: usize,
    /// Host wall-clock seconds for the whole machine run (all ranks).
    pub wall: f64,
}

/// Factors `a` on `p` simulated processors and reports the measurements.
pub fn run_factorization(a: &CsrMatrix, p: usize, opts: &IlutOptions) -> FactorRun {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let t0 = std::time::Instant::now();
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, opts).expect("factorization failed");
        rf.stats
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats: Vec<ParStats> = out.results;
    FactorRun {
        p,
        sim_time: out.sim_time,
        levels: stats[0].levels,
        flops: stats.iter().map(|s| s.flops).sum(),
        fill: stats.iter().map(|s| s.nnz_l + s.nnz_u).sum(),
        wall,
    }
}

/// Measurements from one triangular-solve (and matvec) timing run.
#[derive(Clone, Debug)]
pub struct SolveRun {
    pub p: usize,
    /// Simulated seconds for one forward+backward substitution.
    pub trisolve_time: f64,
    /// Simulated seconds for one matrix–vector product.
    pub matvec_time: f64,
    /// L+U fill of the factorization used.
    pub fill: usize,
    pub levels: usize,
}

/// Factors once, then times one fwd+bwd substitution and one matvec
/// (simulated clock deltas, max over ranks).
pub fn run_trisolve(a: &CsrMatrix, p: usize, opts: &IlutOptions) -> SolveRun {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, opts).expect("factorization failed");
        let tplan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let mut splan = SpmvPlan::build(ctx, &dm, &local);
        let b: Vec<f64> = local.nodes.iter().map(|&g| 1.0 + (g % 5) as f64).collect();
        // Align clocks so the timed section measures the kernel alone.
        ctx.barrier();
        let t0 = ctx.time();
        let y = dist_forward(ctx, &local, &rf, &tplan, &b);
        let _x = dist_backward(ctx, &local, &rf, &tplan, &y);
        ctx.barrier();
        let t1 = ctx.time();
        let _ = dist_spmv(ctx, &dm, &local, &mut splan, &b);
        ctx.barrier();
        let t2 = ctx.time();
        (t1 - t0, t2 - t1, rf.stats.nnz_l + rf.stats.nnz_u, rf.stats.levels)
    });
    let trisolve_time = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let matvec_time = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
    SolveRun {
        p,
        trisolve_time,
        matvec_time,
        fill: out.results.iter().map(|r| r.2).sum(),
        levels: out.results[0].3,
    }
}

/// Prints a relative-speedup table (the paper's Figures 4–6 as data series):
/// for each configuration, `runner` yields the simulated time at each `p`,
/// and the printed series is `time(p₀) / time(p)`.
pub fn print_speedup_table(
    title: &str,
    a: &CsrMatrix,
    procs: &[usize],
    runner: &mut dyn FnMut(&CsrMatrix, usize, &IlutOptions) -> f64,
) {
    let base_p = procs[0];
    println!("## {title} (speedup relative to p = {base_p})\n");
    println!(
        "| {:<18} | {} |",
        "Factorization",
        procs.iter().map(|p| format!("S(p={p:<3})")).collect::<Vec<_>>().join(" | ")
    );
    println!(
        "|{:-<20}|{}",
        "",
        procs.iter().map(|_| format!("{:-<10}|", "")).collect::<String>()
    );
    for opts in config_grid() {
        let mut times = Vec::new();
        for &p in procs {
            times.push(runner(a, p, &opts));
        }
        let base = times[0];
        let cells: Vec<String> = times.iter().map(|&t| format!("{:>8.2}", base / t)).collect();
        println!("| {:<18} | {} |", opts.name(), cells.join(" | "));
    }
    println!(
        "\n(Ideal speedup at p = {} is {:.1}x.)",
        procs.last().unwrap(),
        *procs.last().unwrap() as f64 / base_p as f64
    );
}

/// Formats a simulated-seconds cell the way the paper's tables do.
pub fn fmt_time(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:8.1}")
    } else if t >= 1.0 {
        format!("{t:8.3}")
    } else {
        format!("{t:8.4}")
    }
}

/// Prints a Markdown-ish table header.
pub fn print_header(title: &str, cols: &[String]) {
    println!("\n## {title}\n");
    println!("| {:<18} | {} |", "Factorization", cols.join(" | "));
    println!(
        "|{:-<20}|{}",
        "",
        cols.iter().map(|c| format!("{:-<w$}|", "", w = c.len() + 2)).collect::<String>()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_eighteen_configs() {
        let g = config_grid();
        assert_eq!(g.len(), 18);
        assert!(g[..9].iter().all(|o| o.reduced_cap_factor.is_none()));
        assert!(g[9..].iter().all(|o| o.reduced_cap_factor == Some(K_STAR)));
    }

    #[test]
    fn factorization_run_produces_sane_numbers() {
        std::env::set_var("PILUT_SCALE", "0.02");
        let a = g40();
        let r = run_factorization(&a, 4, &IlutOptions::new(5, 1e-2));
        assert!(r.sim_time > 0.0);
        assert!(r.flops > 0.0);
        assert!(r.fill > a.n_rows());
    }

    #[test]
    fn trisolve_run_times_both_kernels() {
        std::env::set_var("PILUT_SCALE", "0.02");
        let a = g40();
        let r = run_trisolve(&a, 4, &IlutOptions::star(5, 1e-2, 2));
        assert!(r.trisolve_time > 0.0);
        assert!(r.matvec_time > 0.0);
        // A substitution sweeps L and U (≈2× the matvec's flops at equal
        // fill) plus q synchronisations — it must cost more than one matvec.
        assert!(r.trisolve_time > r.matvec_time);
    }
}
