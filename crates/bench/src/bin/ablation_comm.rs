//! Ablation: how the machine's communication parameters change the
//! ILUT-vs-ILUT\* picture.
//!
//! The paper's conclusion argues that ILUT\* "is critical for obtaining good
//! performance on parallel computers with slower communication networks
//! (such as workstation clusters)". This binary factors the same problem on
//! three machines — the T3D model, a zero-communication ideal, and a
//! workstation-cluster model (50× the latency, ~1/15 the bandwidth) — and
//! reports the ILUT/ILUT\* time ratio on each.
//!
//! Usage: `cargo run --release -p pilut-bench --bin ablation_comm`

use pilut_bench::{fmt_time, proc_list, torso};
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_par::{Machine, MachineModel};

fn run(a: &pilut_sparse::CsrMatrix, p: usize, model: MachineModel, opts: &IlutOptions) -> f64 {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let out = Machine::run(p, model, |ctx| {
        let local = dm.local_view(ctx.rank());
        par_ilut(ctx, &dm, &local, opts).expect("factorization failed");
        ctx.barrier();
    });
    out.sim_time
}

fn main() {
    let a = torso();
    let p = *proc_list().last().unwrap();
    eprintln!("[ablation_comm] TORSO: n = {}, p = {p}", a.n_rows());
    let machines: [(&str, MachineModel); 3] = [
        ("zero-comm ideal", MachineModel::zero_comm()),
        ("Cray T3D", MachineModel::cray_t3d()),
        ("workstation cluster", MachineModel::workstation_cluster()),
    ];
    println!("## Ablation — communication cost vs the ILUT* advantage (TORSO, p = {p})\n");
    println!(
        "| {:<20} | {:>12} | {:>12} | {:>12} |",
        "Machine", "ILUT (s)", "ILUT* (s)", "ILUT/ILUT*"
    );
    println!("|{:-<22}|{:-<14}|{:-<14}|{:-<14}|", "", "", "", "");
    let ilut = IlutOptions::new(10, 1e-6);
    let star = IlutOptions::star(10, 1e-6, 2);
    for (name, model) in machines {
        let t_ilut = run(&a, p, model, &ilut);
        let t_star = run(&a, p, model, &star);
        println!(
            "| {:<20} | {} | {} | {:>11.2}x |",
            name,
            fmt_time(t_ilut),
            fmt_time(t_star),
            t_ilut / t_star
        );
    }
    println!("\n(The slower the network, the larger ILUT*'s advantage — its smaller");
    println!(" reduced matrices need fewer independent sets, i.e. fewer synchronisations.)");
}
