//! Figure 6 — forward+backward substitution speedup for TORSO, one series
//! per factorization.
//!
//! Usage: `PILUT_SCALE=0.25 cargo run --release -p pilut-bench --bin fig6_speedup_trisolve`

use pilut_bench::{print_speedup_table, proc_list, run_trisolve, torso};

fn main() {
    let a = torso();
    eprintln!("[fig6] TORSO: n = {}, nnz = {}", a.n_rows(), a.nnz());
    print_speedup_table(
        "Figure 6 — forward/backward substitution speedup, TORSO",
        &a,
        &proc_list(),
        &mut |a, p, opts| {
            let r = run_trisolve(a, p, opts);
            eprintln!(
                "[fig6] {} p={p}: trisolve {:.5}s matvec {:.5}s (q={})",
                opts.name(),
                r.trisolve_time,
                r.matvec_time,
                r.levels
            );
            r.trisolve_time
        },
    );
}
