//! Figure 3 — the block structure of the permuted triangular factors.
//!
//! Orders the unknowns the way the parallel factorization eliminates them
//! (each rank's interiors, then the interface levels) and prints the
//! resulting block-density maps of L and U: rows/columns grouped into one
//! block per rank-interior set and one per level. The paper's Figure 3 is
//! exactly this picture for 4 processors and 2 independent sets.
//!
//! Usage: `cargo run --release -p pilut-bench --bin fig3_structure`

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::{par_ilut, RankFactors};
use pilut_par::{Machine, MachineModel};
use pilut_sparse::gen;
use std::collections::HashMap;

fn main() {
    let p = 4;
    let a = gen::laplace_2d(16, 16);
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let opts = IlutOptions::new(8, 1e-3);
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        par_ilut(ctx, &dm, &local, &opts).unwrap()
    });
    let factors: Vec<RankFactors> = out.results;
    let q = factors[0].levels.len();

    // Block index per node: blocks 0..p are rank interiors, p+l is level l.
    let mut block_of: HashMap<usize, usize> = HashMap::new();
    let mut block_names: Vec<String> = Vec::new();
    for (r, f) in factors.iter().enumerate() {
        for &v in &f.interior {
            block_of.insert(v, r);
        }
        block_names.push(format!("P{r} int"));
    }
    for l in 0..q {
        for f in &factors {
            for &v in &f.levels[l] {
                block_of.insert(v, p + l);
            }
        }
        block_names.push(format!("I_{l}"));
    }
    let nb = p + q;
    let mut l_blocks = vec![vec![0usize; nb]; nb];
    let mut u_blocks = vec![vec![0usize; nb]; nb];
    for f in &factors {
        for (&v, row) in &f.rows {
            let bv = block_of[&v];
            for &(j, _) in &row.l {
                l_blocks[bv][block_of[&j]] += 1;
            }
            for &(j, _) in &row.u {
                u_blocks[bv][block_of[&j]] += 1;
            }
            u_blocks[bv][bv] += 1; // diagonal
        }
    }

    println!("## Figure 3 — block structure of the permuted L and U factors\n");
    println!("16x16 grid, {p} processors, q = {q} independent sets.");
    println!("Cell values are nonzero counts; '.' is an empty block.\n");
    for (title, blocks) in [("L (lower)", &l_blocks), ("U (upper)", &u_blocks)] {
        println!("{title}:");
        print!("{:>9}", "");
        for name in &block_names {
            print!("{name:>9}");
        }
        println!();
        for (bi, row) in blocks.iter().enumerate() {
            print!("{:>9}", block_names[bi]);
            for &c in row {
                if c == 0 {
                    print!("{:>9}", ".");
                } else {
                    print!("{c:>9}");
                }
            }
            println!();
        }
        println!();
    }
    println!("Reading the map: interior blocks are block-diagonal (each processor's");
    println!("own elimination); every interface level couples only to earlier blocks");
    println!("in L and later blocks in U — the paper's colour-coded wedge structure.");
}
