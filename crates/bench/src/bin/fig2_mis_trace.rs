//! Figure 2 — the interface nodes being factored by repeatedly taking a
//! maximal independent set of the successively reduced matrices.
//!
//! Prints the per-level trace: how many interface nodes each independent set
//! captured and how many remained, for ILUT and ILUT\* side by side.
//!
//! Usage: `cargo run --release -p pilut-bench --bin fig2_mis_trace`

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_par::{Machine, MachineModel};
use pilut_sparse::gen;

fn trace(a: &pilut_sparse::CsrMatrix, p: usize, opts: &IlutOptions) -> Vec<usize> {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, opts).unwrap();
        rf.levels.iter().map(|l| l.len()).collect::<Vec<usize>>()
    });
    let q = out.results[0].len();
    (0..q).map(|l| out.results.iter().map(|r| r[l]).sum()).collect()
}

fn main() {
    let p = 8;
    let a = gen::laplace_3d(12, 12, 12);
    println!("## Figure 2 — repeated MIS factorization of the interface nodes\n");
    println!("12x12x12 Laplacian, {p} domains.\n");
    for opts in [IlutOptions::new(10, 1e-4), IlutOptions::star(10, 1e-4, 2)] {
        let sizes = trace(&a, p, &opts);
        let total: usize = sizes.iter().sum();
        println!("{} — {} interface nodes, q = {} independent sets:", opts.name(), total, sizes.len());
        let mut remaining = total;
        for (l, &s) in sizes.iter().enumerate() {
            remaining -= s;
            let bar = "#".repeat((s * 60 / total.max(1)).max(1));
            println!("  level {l:>3}: |I_l| = {s:>5}  remaining = {remaining:>5}  {bar}");
        }
        println!();
    }
    println!("(The paper's Figure 2 illustrates the same process on a toy mesh: each");
    println!(" level factors an independent set and forms the next reduced matrix.)");
}
