//! Baseline comparison: parallel ILU(0) vs ILUT / ILUT\* end to end.
//!
//! The paper's §2–3 narrative: ILU(0) is cheap and its static schedule is
//! short (a colouring), but it is value-blind, so the preconditioner is
//! weaker; threshold dropping costs more to factor and to schedule, but wins
//! overall. This binary measures all three on one problem: simulated factor
//! time, schedule length q, substitution time, and GMRES(50) matvecs.
//!
//! Usage: `cargo run --release -p pilut-bench --bin baseline_ilu0`

use pilut_bench::{fmt_time, torso};
use pilut_core::dist::op::{DistCsr, DistOperator};
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::{par_ilu0, par_ilut};
use pilut_par::{Machine, MachineModel};
use pilut_solver::dist_gmres::{dist_gmres, DistIlu};
use pilut_solver::gmres::GmresOptions;

fn main() {
    let p = 32;
    let a = torso();
    eprintln!("[baseline_ilu0] TORSO: n = {}, p = {p}", a.n_rows());
    println!("## Baseline — parallel ILU(0) vs ILUT vs ILUT* (TORSO, p = {p}, GMRES(50))\n");
    println!(
        "| {:<18} | {:>12} | {:>5} | {:>12} | {:>6} | {:>5} |",
        "Method", "factor (s)", "q", "solve (s)", "NMV", "conv"
    );
    println!("|{:-<20}|{:-<14}|{:-<7}|{:-<14}|{:-<8}|{:-<7}|", "", "", "", "", "", "");
    let variants: [(&str, Option<IlutOptions>); 3] = [
        ("ILU(0)", None),
        ("ILUT(10,1e-4)", Some(IlutOptions::new(10, 1e-4))),
        ("ILUT*(10,1e-4,2)", Some(IlutOptions::star(10, 1e-4, 2))),
    ];
    for (label, opts) in variants {
        let dm = DistMatrix::from_matrix(a.clone(), p, 17);
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            ctx.barrier();
            let t0 = ctx.time();
            let rf = match &opts {
                Some(io) => par_ilut(ctx, &dm, &local, io).unwrap(),
                None => par_ilu0(ctx, &dm, &local).unwrap(),
            };
            ctx.barrier();
            let t_factor = ctx.time() - t0;
            let q = rf.stats.levels;
            let ones = vec![1.0; local.len()];
            let b = op.apply(ctx, &ones);
            let mut pre = DistIlu::new(ctx, &dm, &local, rf);
            let gopts = GmresOptions { restart: 50, rtol: 1e-7, max_matvecs: 3000 };
            ctx.barrier();
            let t1 = ctx.time();
            let r = dist_gmres(ctx, &mut op, &local, &mut pre, &b, &gopts);
            ctx.barrier();
            (t_factor, q, ctx.time() - t1, r.matvecs, r.converged)
        });
        let (tf, q, ts, nmv, conv) = out.results[0];
        println!(
            "| {:<18} | {} | {:>5} | {} | {:>6} | {:>5} |",
            label,
            fmt_time(tf),
            q,
            fmt_time(ts),
            nmv,
            conv
        );
    }
    println!("\n(ILU(0): short static schedule, weak preconditioner; ILUT*: costlier");
    println!(" factorization, far fewer iterations — the paper's §2 trade-off.)");
}
