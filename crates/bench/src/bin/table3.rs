//! Table 3 — GMRES(10) and GMRES(50) on the largest processor count:
//! solve time (simulated T3D seconds, excluding the factorization, as in the
//! paper) and the number of matrix–vector products (NMV), for all 18
//! ILUT/ILUT\* preconditioners plus the diagonal baseline.
//!
//! Usage: `PILUT_SCALE=0.25 cargo run --release -p pilut-bench --bin table3`

use pilut_bench::{config_grid, fmt_time, g40, proc_list, torso};
use pilut_core::dist::op::{DistCsr, DistOperator};
use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_par::{Machine, MachineModel};
use pilut_solver::dist_gmres::{dist_gmres, DistDiagonal, DistIlu, DistPrecond};
use pilut_solver::gmres::GmresOptions;
use pilut_sparse::CsrMatrix;

fn max_matvecs() -> usize {
    std::env::var("PILUT_MAX_NMV").ok().and_then(|s| s.parse().ok()).unwrap_or(3000)
}

/// One GMRES solve; returns (sim solve seconds, NMV, converged).
fn run_solve(a: &CsrMatrix, p: usize, ilut: Option<&IlutOptions>, restart: usize) -> (f64, usize, bool) {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let gopts = GmresOptions { restart, rtol: 1e-7, max_matvecs: max_matvecs() };
    let ilut = ilut.cloned();
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let mut op = DistCsr::new(ctx, &dm, &local);
        // b = A·1, x0 = 0 (paper §6).
        let ones = vec![1.0; local.len()];
        let b = op.apply(ctx, &ones);
        let mut pre: Box<dyn DistPrecond> = match &ilut {
            Some(io) => {
                let rf = par_ilut(ctx, &dm, &local, io).expect("factorization failed");
                Box::new(DistIlu::new(ctx, &dm, &local, rf))
            }
            None => Box::new(DistDiagonal::new(&dm, &local)),
        };
        // Time only the solve, as the paper does.
        ctx.barrier();
        let t0 = ctx.time();
        let r = dist_gmres(ctx, &mut op, &local, pre.as_mut(), &b, &gopts);
        ctx.barrier();
        (ctx.time() - t0, r.matvecs, r.converged)
    });
    let t = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    (t, out.results[0].1, out.results[0].2)
}

fn main() {
    let p = *proc_list().last().expect("PILUT_PROCS must be non-empty");
    let restarts = [10usize, 50];
    for (name, a) in [("G40", g40()), ("TORSO", torso())] {
        eprintln!("[table3] {name}: n = {}, nnz = {}, p = {p}", a.n_rows(), a.nnz());
        println!("\n## Table 3 — GMRES performance, {name}, p = {p}\n");
        println!(
            "| {:<18} | GMRES(10) time | GMRES(10) NMV | GMRES(50) time | GMRES(50) NMV |",
            "Preconditioner"
        );
        println!("|{:-<20}|{:-<16}|{:-<15}|{:-<16}|{:-<15}|", "", "", "", "", "");
        let mut rows: Vec<(String, Option<IlutOptions>)> =
            config_grid().into_iter().map(|o| (o.name(), Some(o))).collect();
        rows.push(("Diagonal".to_string(), None));
        for (label, opts) in rows {
            let mut cells = Vec::new();
            for &restart in &restarts {
                let (t, nmv, conv) = run_solve(&a, p, opts.as_ref(), restart);
                let tcell = if conv { fmt_time(t) } else { format!("{:>8}", "--") };
                let ncell = if conv { format!("{nmv:>6}") } else { format!("{nmv:>5}*") };
                eprintln!("[table3] {name} {label} GMRES({restart}): {t:.3}s NMV={nmv} conv={conv}");
                cells.push(format!("{tcell:>14}"));
                cells.push(format!("{ncell:>13}"));
            }
            println!("| {label:<18} | {} |", cells.join(" | "));
        }
        println!("\n(`--`/`*` = not converged within the NMV budget, as for the paper's diagonal runs.)");
    }
}
