//! Figure 1 — why ILU(0)'s colouring schedule breaks down for ILUT.
//!
//! ILU(0) never fills, so a one-time colouring of the interface nodes (in
//! the original pattern) yields valid concurrent elimination classes. ILUT
//! creates fill while the interior nodes factor, adding new dependencies
//! among the interface nodes; this binary measures them: same-colour node
//! pairs that the initial reduced matrix `A_I⁰` now couples.
//!
//! Usage: `cargo run --release -p pilut-bench --bin fig1_coloring`

use pilut_core::dist::DistMatrix;
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_graph::coloring::{color_classes, greedy_coloring};
use pilut_graph::Graph;
use pilut_par::{Machine, MachineModel};
use pilut_sparse::gen;
use std::collections::HashMap;

fn main() {
    let p = 4;
    let a = gen::laplace_2d(24, 24);
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);

    // Interface nodes and their induced subgraph in the *original* pattern.
    let mut interface: Vec<usize> = Vec::new();
    for r in 0..p {
        interface.extend_from_slice(&dm.local_view(r).interface);
    }
    interface.sort_unstable();
    let sub = a.principal_submatrix(&interface);
    let g = Graph::from_csr_pattern(&sub);
    let (colors, nc) = greedy_coloring(&g);
    let classes = color_classes(&colors, nc);

    println!("## Figure 1 — ILU(0) colouring vs ILUT fill dependencies\n");
    println!("24x24 grid, {p} domains, {} interface nodes.", interface.len());
    println!("\n(a) ILU(0): one colouring schedules the whole interface elimination:");
    for (c, class) in classes.iter().enumerate() {
        println!("    colour {c}: {:3} nodes", class.len());
    }

    // The ILUT reduced matrix adds fill-induced dependencies.
    let opts = IlutOptions::new(10, 1e-6);
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        (rf.initial_reduced_cols.clone(), rf.stats.levels)
    });
    let pos: HashMap<usize, usize> = interface.iter().enumerate().map(|(k, &v)| (v, k)).collect();
    let mut original_arcs = 0usize;
    let mut fill_arcs = 0usize;
    let mut same_color_conflicts = 0usize;
    for (rows, _) in &out.results {
        for (v, cols) in rows {
            for &u in cols {
                if u == *v {
                    continue;
                }
                if a.get(*v, u).is_some() {
                    original_arcs += 1;
                } else {
                    fill_arcs += 1;
                    if colors[pos[v]] == colors[pos[&u]] {
                        same_color_conflicts += 1;
                    }
                }
            }
        }
    }
    let q = out.results[0].1;
    println!("\n(b) ILUT({},{:.0e}) after interior elimination:", opts.m, opts.tau);
    println!("    original interface couplings : {original_arcs}");
    println!("    fill-added couplings         : {fill_arcs}");
    println!("    …of which join SAME-colour pairs: {same_color_conflicts}");
    println!("\n=> the static {nc}-colour schedule is invalid for ILUT;");
    println!("   the parallel ILUT run instead needed q = {q} dynamically computed");
    println!("   independent sets (paper Figure 1b / Section 3).");
}
