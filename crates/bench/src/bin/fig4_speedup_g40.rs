//! Figure 4 — factorization speedup for G40, relative to the smallest
//! processor count, for all nine (m, t) configurations of ILUT and ILUT\*.
//!
//! Usage: `PILUT_SCALE=0.25 cargo run --release -p pilut-bench --bin fig4_speedup_g40`

use pilut_bench::{g40, print_speedup_table, proc_list, run_factorization};

fn main() {
    let a = g40();
    eprintln!("[fig4] G40: n = {}, nnz = {}", a.n_rows(), a.nnz());
    print_speedup_table(
        "Figure 4 — factorization speedup, G40",
        &a,
        &proc_list(),
        &mut |a, p, opts| {
            let r = run_factorization(a, p, opts);
            eprintln!("[fig4] {} p={p}: {:.4}s (q={})", opts.name(), r.sim_time, r.levels);
            r.sim_time
        },
    );
}
