//! Table 1 — parallel factorization time (simulated T3D seconds) for G40
//! and TORSO across p ∈ {16, 32, 64, 128}, the full (m, t) grid, ILUT and
//! ILUT\*.
//!
//! Usage: `PILUT_SCALE=0.25 cargo run --release -p pilut-bench --bin table1`

use pilut_bench::{config_grid, fmt_time, g40, print_header, proc_list, run_factorization, torso};

fn main() {
    let procs = proc_list();
    for (name, a) in [("G40", g40()), ("TORSO", torso())] {
        eprintln!("[table1] {name}: n = {}, nnz = {}", a.n_rows(), a.nnz());
        let cols: Vec<String> = procs.iter().map(|p| format!("p = {p:<4}")).collect();
        let mut extra: Vec<String> = Vec::new();
        print_header(&format!("Table 1 — factorization time, {name}"), &cols);
        for opts in config_grid() {
            let mut cells = Vec::new();
            let mut qs = Vec::new();
            for &p in &procs {
                let r = run_factorization(&a, p, &opts);
                cells.push(fmt_time(r.sim_time));
                qs.push(r.levels);
                eprintln!(
                    "[table1] {name} {} p={p}: sim {:.4}s, q={}, wall {:.1}s",
                    opts.name(),
                    r.sim_time,
                    r.levels,
                    r.wall
                );
            }
            println!("| {:<18} | {} |", opts.name(), cells.join(" | "));
            extra.push(format!(
                "{:<18} levels(q) by p: {}",
                opts.name(),
                qs.iter().map(|q| q.to_string()).collect::<Vec<_>>().join(", ")
            ));
        }
        println!("\nIndependent-set counts (paper §6 discussion):");
        for line in extra {
            println!("  {line}");
        }
    }
}
