//! Figure 5 — factorization speedup for TORSO (same layout as Figure 4).
//!
//! Usage: `PILUT_SCALE=0.25 cargo run --release -p pilut-bench --bin fig5_speedup_torso`

use pilut_bench::{print_speedup_table, proc_list, run_factorization, torso};

fn main() {
    let a = torso();
    eprintln!("[fig5] TORSO: n = {}, nnz = {}", a.n_rows(), a.nnz());
    print_speedup_table(
        "Figure 5 — factorization speedup, TORSO",
        &a,
        &proc_list(),
        &mut |a, p, opts| {
            let r = run_factorization(a, p, opts);
            eprintln!("[fig5] {} p={p}: {:.4}s (q={})", opts.name(), r.sim_time, r.levels);
            r.sim_time
        },
    );
}
