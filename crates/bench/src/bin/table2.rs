//! Table 2 — forward+backward substitution time for TORSO (simulated T3D
//! seconds) for each factorization, plus the matrix–vector product row, and
//! the §6 ratio analysis (trisolve vs matvec).
//!
//! Usage: `PILUT_SCALE=0.25 cargo run --release -p pilut-bench --bin table2`

use pilut_bench::{config_grid, fmt_time, print_header, proc_list, run_trisolve, torso};

fn main() {
    let procs = proc_list();
    let a = torso();
    eprintln!("[table2] TORSO: n = {}, nnz = {}", a.n_rows(), a.nnz());
    let cols: Vec<String> = procs.iter().map(|p| format!("p = {p:<4}")).collect();
    print_header("Table 2 — forward+backward substitution time, TORSO", &cols);
    let mut matvec_rows: Vec<Vec<f64>> = Vec::new();
    let mut ratio_lines: Vec<String> = Vec::new();
    for opts in config_grid() {
        let mut cells = Vec::new();
        let mut mv = Vec::new();
        let mut ratios = Vec::new();
        for &p in &procs {
            let r = run_trisolve(&a, p, &opts);
            cells.push(fmt_time(r.trisolve_time));
            mv.push(r.matvec_time);
            ratios.push(r.trisolve_time / r.matvec_time);
            eprintln!(
                "[table2] {} p={p}: trisolve {:.5}s, matvec {:.5}s, q={}",
                opts.name(),
                r.trisolve_time,
                r.matvec_time,
                r.levels
            );
        }
        println!("| {:<18} | {} |", opts.name(), cells.join(" | "));
        ratio_lines.push(format!(
            "{:<18} trisolve/matvec by p: {}",
            opts.name(),
            ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>().join(", ")
        ));
        matvec_rows.push(mv);
    }
    // The matvec row (identical across factorizations up to noise — print
    // the first measurement set).
    if let Some(mv) = matvec_rows.first() {
        let cells: Vec<String> = mv.iter().map(|&t| fmt_time(t)).collect();
        println!("| {:<18} | {} |", "Matrix-Vector", cells.join(" | "));
    }
    println!("\nTrisolve/matvec cost ratios (paper §5: ≈1.3× for ILUT*):");
    for line in ratio_lines {
        println!("  {line}");
    }
}
