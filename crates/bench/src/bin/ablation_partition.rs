//! Ablation: how much the multilevel k-way partition matters.
//!
//! The paper attributes part of its efficiency to the high-quality domain
//! decomposition ("a good domain decomposition … significantly decreases
//! the amount of communication", §1). This binary factors the same problem
//! under the multilevel k-way partition and under a naive contiguous block
//! distribution, comparing interface sizes, level counts, and simulated
//! factorization time.
//!
//! Usage: `cargo run --release -p pilut-bench --bin ablation_partition`

use pilut_bench::{fmt_time, torso};
use pilut_core::dist::{DistMatrix, Distribution};
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_par::{Machine, MachineModel};

fn run(dm: &DistMatrix, p: usize, opts: &IlutOptions) -> (f64, usize) {
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, dm, &local, opts).expect("factorization failed");
        ctx.barrier();
        rf.stats.levels
    });
    (out.sim_time, out.results[0])
}

fn main() {
    let a = torso();
    let p = 32;
    let opts = IlutOptions::star(10, 1e-4, 2);
    eprintln!("[ablation_partition] TORSO: n = {}, p = {p}, {}", a.n_rows(), opts.name());
    println!("## Ablation — multilevel k-way partition vs naive block distribution\n");
    println!("TORSO, p = {p}, {}:\n", opts.name());
    println!(
        "| {:<18} | {:>10} | {:>8} | {:>12} | {:>6} |",
        "Distribution", "interface", "(% n)", "factor (s)", "q"
    );
    println!("|{:-<20}|{:-<12}|{:-<10}|{:-<14}|{:-<8}|", "", "", "", "", "");
    let n = a.n_rows();
    for (name, dist) in [
        ("multilevel k-way", Distribution::from_matrix(&a, p, 17)),
        ("contiguous block", Distribution::block(n, p)),
    ] {
        let dm = DistMatrix::new(a.clone(), dist);
        let iface = dm.total_interface();
        let (t, q) = run(&dm, p, &opts);
        println!(
            "| {:<18} | {:>10} | {:>7.1}% | {} | {:>6} |",
            name,
            iface,
            100.0 * iface as f64 / n as f64,
            fmt_time(t),
            q
        );
    }
    println!("\n(A bad decomposition inflates the interface set, hence the reduced");
    println!(" matrices, the independent-set count, and the factorization time.)");
}
