//! The self-healing distributed solve: survive rank loss mid-solve.
//!
//! [`dist_solve_robust`] is the lost-rank rung of the degradation ladder.
//! It drives par-ILUT + distributed GMRES exactly like a hand-rolled
//! workload would, but wraps every attempt in an unwind catcher so that an
//! injected `Kill` (surfaced by the VM's recovery layer as a
//! [`pilut_par::RankLost`] unwind on every survivor — requires
//! `MachineBuilder::recovery(true)`) is *handled* instead of fatal:
//!
//! 1. the victim itself observes `Ctx::killed()` and returns a tombstone
//!    report (the VM requires every rank to produce a result);
//! 2. each survivor scatters its latest iterate checkpoint into a global
//!    vector, adopts the new world (`Ctx::adopt_world`), runs the recovery
//!    agreement round (`Ctx::recover_sync`), and shrinks the row
//!    distribution ([`pilut_core::dist::recover::shrink`]) with the
//!    *cumulative* dead set;
//! 3. the attempt re-runs on the shrunk world: plans and factors are
//!    rebuilt from the replicated input matrix, and GMRES warm-starts from
//!    the checkpoint ([`crate::dist_gmres::dist_gmres_from`]), so only the
//!    in-flight restart cycle's progress is lost.
//!
//! Every recovery is recorded as a [`RecoveryRecord`] (epoch, lost ranks,
//! time-to-recover) in the returned [`DistSolveReport`]. Invariants of this
//! protocol are catalogued in DESIGN §14.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use pilut_core::dist::op::DistCsr;
use pilut_core::dist::recover::shrink;
use pilut_core::dist::{DistMatrix, Distribution};
use pilut_core::options::IlutOptions;
use pilut_core::parallel::par_ilut;
use pilut_par::{Ctx, RankLost};
use pilut_sparse::CsrMatrix;

use crate::dist_gmres::{dist_gmres_from, DistDiagonal, DistIdentity, DistIlu, DistPrecond};
use crate::gmres::GmresOptions;
use crate::report::{Breakdown, RecoveryRecord};

/// A typed, recoverable error surfaced between attempts of a distributed
/// solve. Today the only variant is rank loss; the VM raises it as a panic
/// payload ([`pilut_par::RankLost`]) and [`dist_solve_robust`] catches and
/// classifies it here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// One or more ranks died mid-solve.
    RankLost {
        /// The epoch the survivors adopt.
        epoch: u64,
        /// All ranks dead at detection, ascending (cumulative).
        dead: Vec<usize>,
    },
}

/// Downcasts an unwind payload to the recoverable [`SolveError`] it
/// represents, or hands the payload back for re-raising.
fn classify(
    payload: Box<dyn std::any::Any + Send>,
) -> Result<SolveError, Box<dyn std::any::Any + Send>> {
    match payload.downcast::<RankLost>() {
        Ok(lost) => Ok(SolveError::RankLost {
            epoch: lost.epoch,
            dead: lost.dead,
        }),
        Err(other) => Err(other),
    }
}

/// Per-rank outcome of [`dist_solve_robust`]. Scalar fields are identical
/// on every *surviving* rank; a killed rank returns a tombstone
/// (`dead == true`).
#[derive(Clone, Debug)]
pub struct DistSolveReport {
    /// This rank's slice of the solution, in the **final epoch's**
    /// local-view order.
    pub x_local: Vec<f64>,
    /// Global row ids of `x_local`'s entries (final epoch).
    pub nodes: Vec<usize>,
    pub converged: bool,
    pub rel_residual: f64,
    pub matvecs: usize,
    /// Why the final attempt's iteration stopped early, if it did.
    pub breakdown: Option<Breakdown>,
    /// Preconditioner the final attempt ran with.
    pub preconditioner: String,
    /// Every rank loss survived, in order of adoption.
    pub recoveries: Vec<RecoveryRecord>,
    /// True when this rank was killed mid-solve: all other fields are
    /// tombstone values.
    pub dead: bool,
}

impl DistSolveReport {
    fn tombstone(recoveries: Vec<RecoveryRecord>) -> Self {
        DistSolveReport {
            x_local: Vec::new(),
            nodes: Vec::new(),
            converged: false,
            rel_residual: f64::INFINITY,
            matvecs: 0,
            breakdown: None,
            preconditioner: "(killed)".into(),
            recoveries,
            dead: false,
        }
    }

    /// One-line summary naming each recovery epoch, e.g. `converged via
    /// ILUT(10,1e-4) (rel 3.1e-9, 24 matvecs) surviving [epoch 1: lost
    /// rank(s) [2], recovered in 1.2e-4s]`.
    pub fn summary(&self) -> String {
        if self.dead {
            return "rank killed mid-solve (tombstone)".into();
        }
        let status = if self.converged {
            "converged"
        } else {
            "FAILED to converge"
        };
        let mut s = format!(
            "{status} via {} (rel {:.1e}, {} matvecs)",
            self.preconditioner, self.rel_residual, self.matvecs
        );
        if !self.recoveries.is_empty() {
            let named: Vec<String> = self.recoveries.iter().map(|r| r.to_string()).collect();
            s.push_str(&format!(" surviving [{}]", named.join("; ")));
        }
        s
    }
}

/// Distributed robust solve of `A x = b` with rank-loss recovery.
/// Collective: every rank of the machine calls it with the same replicated
/// `a`, `b_global` and `dist`. Requires `MachineBuilder::recovery(true)`
/// for actual kills to be survivable; without faults it is a plain
/// par-ILUT + GMRES solve with a checkpoint written once per restart cycle.
///
/// The preconditioner mini-ladder inside each attempt degrades
/// ILUT → Jacobi → identity on factorization failure, with each step agreed
/// collectively so every rank takes the same branch.
pub fn dist_solve_robust(
    ctx: &mut Ctx,
    a: &CsrMatrix,
    b_global: &[f64],
    dist: &Distribution,
    ilut_opts: &IlutOptions,
    gmres_opts: &GmresOptions,
) -> DistSolveReport {
    let n = a.n_rows();
    assert_eq!(b_global.len(), n);
    assert_eq!(dist.n_rows(), n);

    // The iterate checkpoint lives in *global* index space so it survives
    // redistribution: after a loss, a row's last value is valid no matter
    // which survivor inherits it. Rows owned by a dead rank keep whatever
    // was last scattered for them (the initial guess 0.0 if never owned by
    // a survivor) — any warm start is a legal warm start.
    let mut ckpt_global = vec![0.0f64; n];
    let mut recoveries: Vec<RecoveryRecord> = Vec::new();
    let mut cur = dist.clone();

    loop {
        let dm = DistMatrix::new(a.clone(), cur.clone());
        let local = dm.local_view(ctx.rank());
        let nodes = local.nodes.clone();
        // Owned outside the catcher: on an unwind mid-cycle this still
        // holds the last *completed* cycle's iterate.
        let mut ckpt_local: Vec<f64> = nodes.iter().map(|&g| ckpt_global[g]).collect();

        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let b: Vec<f64> = nodes.iter().map(|&g| b_global[g]).collect();
            let mut pre: Box<dyn DistPrecond> = match par_ilut(ctx, &dm, &local, ilut_opts) {
                // par_ilut's fault verdict is collective: Ok/Err is agreed.
                Ok(rf) => Box::new(
                    DistIlu::new(ctx, &dm, &local, rf)
                        .with_label(format!("ILUT({},{:.0e})", ilut_opts.m, ilut_opts.tau)),
                ),
                Err(_) => {
                    // Jacobi viability is a per-rank fact — agree on it.
                    let diag = DistDiagonal::try_new(&dm, &local);
                    if ctx.all_reduce_sum_u64(u64::from(diag.is_err())) == 0 {
                        // lint: allow(unwrap): the all-reduce said no rank errored
                        Box::new(diag.expect("agreed usable"))
                    } else {
                        Box::new(DistIdentity)
                    }
                }
            };
            let mut op = DistCsr::new(ctx, &dm, &local);
            let x0 = ckpt_local.clone();
            let r = dist_gmres_from(
                ctx,
                &mut op,
                &local,
                pre.as_mut(),
                &b,
                gmres_opts,
                Some(x0),
                Some(&mut ckpt_local),
            );
            (r, pre.name())
        }));

        match attempt {
            Ok((r, preconditioner)) => {
                return DistSolveReport {
                    x_local: r.x_local,
                    nodes,
                    converged: r.converged,
                    rel_residual: r.rel_residual,
                    matvecs: r.matvecs,
                    breakdown: r.breakdown,
                    preconditioner,
                    recoveries,
                    dead: false,
                };
            }
            Err(payload) => {
                if ctx.killed() {
                    // This rank is the victim. The kill unwound the attempt;
                    // return the required per-rank result instead of
                    // re-raising (the driver contract of
                    // `MachineBuilder::recovery`).
                    let mut t = DistSolveReport::tombstone(recoveries);
                    t.dead = true;
                    return t;
                }
                match classify(payload) {
                    Ok(SolveError::RankLost { .. }) => {
                        // Preserve progress before the world changes hands.
                        for (&g, &v) in nodes.iter().zip(&ckpt_local) {
                            ckpt_global[g] = v;
                        }
                        let t_lost = ctx.time();
                        let dead = ctx.adopt_world();
                        ctx.recover_sync();
                        // `dead` is cumulative, so shrinking the *original*
                        // distribution is correct across repeated losses —
                        // and bitwise-deterministic on every survivor.
                        cur = shrink(dist, &dead);
                        recoveries.push(RecoveryRecord {
                            epoch: ctx.epoch(),
                            lost: dead,
                            time_to_recover: ctx.time() - t_lost,
                        });
                        // Loop: rebuild plans and factors, resume from ckpt.
                    }
                    Err(other) => resume_unwind(other),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_core::options::BreakdownPolicy;
    use pilut_par::{FaultAction, FaultPlan, FaultRule, Machine, MachineModel};
    use pilut_sparse::gen;

    fn model() -> MachineModel {
        MachineModel::cray_t3d()
    }

    /// Assembles the global solution from surviving ranks' reports and
    /// checks it against `x_true`.
    fn assemble_and_check(reports: &[DistSolveReport], n: usize, x_true: &[f64]) {
        let mut x = vec![f64::NAN; n];
        for r in reports.iter().filter(|r| !r.dead) {
            assert!(r.converged, "survivor failed: {}", r.summary());
            for (&g, &v) in r.nodes.iter().zip(&r.x_local) {
                x[g] = v;
            }
        }
        let err = x
            .iter()
            .zip(x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-4, "assembled solution wrong: err = {err}");
    }

    #[test]
    fn fault_free_solve_reports_no_recoveries() {
        let a = gen::laplace_2d(10, 10);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = a.spmv_owned(&x_true);
        let dist = Distribution::from_matrix(&a, 4, 23);
        let out = Machine::run_checked(4, model(), |ctx| {
            dist_solve_robust(
                ctx,
                &a,
                &b,
                &dist,
                &IlutOptions::new(10, 1e-4),
                &GmresOptions::default(),
            )
        });
        assemble_and_check(&out.results, n, &x_true);
        for r in &out.results {
            assert!(r.recoveries.is_empty());
            assert!(!r.dead);
            assert!(
                r.preconditioner.starts_with("ILUT("),
                "{}",
                r.preconditioner
            );
        }
    }

    #[test]
    fn kill_mid_solve_recovers_and_converges() {
        let a = gen::laplace_2d(10, 10);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = a.spmv_owned(&x_true);
        let dist = Distribution::from_matrix(&a, 4, 23);
        // Kill rank 2 a little way into the solve (past plan construction).
        let plan = FaultPlan::new(61).with(FaultRule::new(FaultAction::Kill).rank(2).after_op(40));
        let out = Machine::builder(model())
            .recovery(true)
            .fault_plan(plan)
            .run(4, |ctx| {
                dist_solve_robust(
                    ctx,
                    &a,
                    &b,
                    &dist,
                    &IlutOptions::new(10, 1e-4),
                    &GmresOptions::default(),
                )
            });
        assert!(
            out.injected_faults.iter().any(|f| f.kind == "kill"),
            "the kill must actually fire for this test to mean anything"
        );
        assemble_and_check(&out.results, n, &x_true);
        assert!(out.results[2].dead, "the victim tombstones");
        for r in [0usize, 1, 3] {
            let rep = &out.results[r];
            assert_eq!(rep.recoveries.len(), 1, "rank {r}: {}", rep.summary());
            let rec = &rep.recoveries[0];
            assert_eq!((rec.epoch, rec.lost.clone()), (1, vec![2]));
            assert!(rec.time_to_recover >= 0.0);
            assert!(
                rep.summary().contains("epoch 1") && rep.summary().contains("[2]"),
                "summary must name the recovery: {}",
                rep.summary()
            );
            // Survivors cover every row, including the victim's.
            assert_eq!(
                rep.nodes.len(),
                rep.x_local.len(),
                "rank {r} report is internally consistent"
            );
        }
        let covered: usize = out.results.iter().map(|r| r.nodes.len()).sum();
        assert_eq!(covered, n, "the shrunk world owns every row exactly once");
    }

    #[test]
    fn ladder_degrades_to_jacobi_when_the_factorization_aborts() {
        // A zero diagonal on row 0 — first in elimination order, so no
        // update can repair it — with BreakdownPolicy::Abort makes par_ilut
        // fail collectively; the mini-ladder must agree to fall back — and
        // since the zero diagonal also poisons Jacobi, land on identity.
        let mut a = gen::laplace_2d(6, 6);
        let k = (a.row_ptr()[0]..a.row_ptr()[1])
            .find(|&k| a.col_idx()[k] == 0)
            .expect("the Laplacian has its diagonal");
        a.values_mut()[k] = 0.0;
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 2) as f64).collect();
        let b = a.spmv_owned(&x_true);
        let dist = Distribution::from_matrix(&a, 2, 23);
        let opts = IlutOptions {
            breakdown: BreakdownPolicy::Abort,
            ..IlutOptions::new(10, 1e-4)
        };
        let out = Machine::run_checked(2, model(), |ctx| {
            dist_solve_robust(ctx, &a, &b, &dist, &opts, &GmresOptions::default())
        });
        for r in &out.results {
            assert_eq!(r.preconditioner, "none", "{}", r.summary());
            assert!(r.recoveries.is_empty());
        }
    }
}
