//! Preconditioned conjugate gradients for symmetric positive definite
//! systems.
//!
//! The SPD companion to GMRES: with the IC(0) factorization
//! ([`pilut_core::serial::ic0`]) this is the Meijerink–van der Vorst ICCG
//! method — the original incomplete-factorization preconditioner the
//! paper's §2 lineage starts from.

use crate::report::Breakdown;
use pilut_core::dist::op::LinOp;
use pilut_core::precond::Preconditioner;
use pilut_sparse::vec_ops::{axpy, dot, norm2};

/// Solver parameters.
#[derive(Clone, Debug)]
pub struct CgOptions {
    /// Stop when `‖r‖ ≤ rtol · ‖b‖`.
    pub rtol: f64,
    /// Iteration cap (one matvec per iteration).
    pub max_iters: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rtol: 1e-7,
            max_iters: 10_000,
        }
    }
}

/// Solver outcome.
#[derive(Clone, Debug)]
pub struct CgResult {
    pub x: Vec<f64>,
    pub converged: bool,
    pub iterations: usize,
    pub rel_residual: f64,
    /// Why the iteration stopped early: indefinite curvature (the matrix or
    /// preconditioner is not SPD) or non-finite recurrence scalars. `None`
    /// on clean convergence or a plain iteration-cap stop.
    pub breakdown: Option<Breakdown>,
}

/// Solves `A x = b` for SPD `A` with preconditioned CG. The preconditioner
/// must be symmetric positive definite as well (identity, diagonal, IC(0)).
pub fn cg<A: LinOp + ?Sized>(
    a: &A,
    b: &[f64],
    precond: &dyn Preconditioner,
    opts: &CgOptions,
) -> CgResult {
    let n = a.n_rows();
    assert_eq!(b.len(), n);
    let b_norm = norm2(b);
    // lint: allow(float-eq): exact zero-RHS short-circuit
    if b_norm == 0.0 {
        return CgResult {
            x: vec![0.0; n],
            converged: true,
            iterations: 0,
            rel_residual: 0.0,
            breakdown: None,
        };
    }
    let target = opts.rtol * b_norm;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = precond.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut iterations = 0usize;
    let mut breakdown: Option<Breakdown> = None;
    while iterations < opts.max_iters {
        let r_norm = norm2(&r);
        if r_norm <= target {
            return CgResult {
                x,
                converged: true,
                iterations,
                rel_residual: r_norm / b_norm,
                breakdown: None,
            };
        }
        if !r_norm.is_finite() || !rz.is_finite() {
            breakdown = Some(Breakdown::NonFinite { at: iterations });
            break;
        }
        let ap = a.apply(&p);
        let pap = dot(&p, &ap);
        if !pap.is_finite() {
            breakdown = Some(Breakdown::NonFinite { at: iterations });
            break;
        }
        if pap <= 0.0 {
            // CG's theory needs pᵀAp > 0; a non-positive value means the
            // operator (or preconditioner) is not SPD and every later
            // iterate would be untrustworthy.
            breakdown = Some(Breakdown::IndefiniteCurvature { at: iterations });
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        z = precond.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        iterations += 1;
    }
    let mut rel = norm2(&r) / b_norm;
    if !rel.is_finite() {
        rel = f64::INFINITY;
    }
    CgResult {
        converged: rel <= opts.rtol,
        x,
        iterations,
        rel_residual: rel,
        breakdown,
    }
}

/// An [`Preconditioner`] adapter over IC(0) factors.
pub struct IcPreconditioner {
    factors: pilut_core::serial::ic0::IcFactors,
}

impl IcPreconditioner {
    /// Wraps IC(0) factors as a CG preconditioner.
    pub fn new(factors: pilut_core::serial::ic0::IcFactors) -> Self {
        IcPreconditioner { factors }
    }
}

impl Preconditioner for IcPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        self.factors.solve(r)
    }

    fn name(&self) -> String {
        "IC(0)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_core::precond::{DiagonalPreconditioner, IdentityPreconditioner};
    use pilut_core::serial::ic0::ic0;
    use pilut_sparse::{gen, CsrMatrix};

    fn spd_problem(nx: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = gen::laplace_2d(nx, nx);
        let x_true: Vec<f64> = (0..a.n_rows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = a.spmv_owned(&x_true);
        (a, b, x_true)
    }

    #[test]
    fn plain_cg_converges_on_laplacian() {
        let (a, b, x_true) = spd_problem(12);
        let r = cg(&a, &b, &IdentityPreconditioner, &CgOptions::default());
        assert!(r.converged, "relres {}", r.rel_residual);
        let err: f64 =
            r.x.iter()
                .zip(&x_true)
                .map(|(x, t)| (x - t).abs())
                .fold(0.0, f64::max);
        assert!(err < 1e-5);
    }

    #[test]
    fn iccg_beats_diagonal_and_plain() {
        let (a, b, _) = spd_problem(24);
        let plain = cg(&a, &b, &IdentityPreconditioner, &CgOptions::default());
        let diag = cg(
            &a,
            &b,
            &DiagonalPreconditioner::new(&a),
            &CgOptions::default(),
        );
        let ic = ic0(&a).unwrap();
        let iccg = cg(&a, &b, &IcPreconditioner::new(ic), &CgOptions::default());
        assert!(plain.converged && diag.converged && iccg.converged);
        assert!(
            iccg.iterations < plain.iterations && iccg.iterations < diag.iterations,
            "ICCG {} vs plain {} vs diagonal {}",
            iccg.iterations,
            plain.iterations,
            diag.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let (a, _, _) = spd_problem(5);
        let r = cg(
            &a,
            &vec![0.0; a.n_rows()],
            &IdentityPreconditioner,
            &CgOptions::default(),
        );
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_cap_respected() {
        let (a, b, _) = spd_problem(20);
        let r = cg(
            &a,
            &b,
            &IdentityPreconditioner,
            &CgOptions {
                max_iters: 3,
                rtol: 1e-14,
            },
        );
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }
}
