//! Structured breakdown and recovery reporting for the iterative solvers.
//!
//! A Krylov solve can fail *numerically* (NaN/Inf in the Arnoldi process,
//! indefinite curvature in CG) or *practically* (stagnation across restart
//! cycles). Both are detected and reported as a typed [`Breakdown`] instead
//! of silently returning garbage; [`crate::robust::solve_robust`] consumes
//! these to drive its degradation ladder and summarises what happened in a
//! [`SolveReport`].

use pilut_core::options::FactorError;

/// Why an iterative solve stopped making (trustworthy) progress.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Breakdown {
    /// A NaN or infinity entered the iteration (Arnoldi vector, Hessenberg
    /// entry, or CG recurrence scalar) at the given matvec/iteration count.
    NonFinite {
        /// Matrix–vector products performed when the poison was detected.
        at: usize,
    },
    /// The restarted iteration stopped reducing the residual: two
    /// consecutive restart cycles ended with no measurable decrease.
    Stagnation {
        /// Matrix–vector products performed when stagnation was declared.
        at: usize,
    },
    /// CG met a direction `p` with `pᵀAp ≤ 0`: the matrix (or the
    /// preconditioner) is not positive definite.
    IndefiniteCurvature {
        /// CG iterations performed when the curvature test failed.
        at: usize,
    },
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Breakdown::NonFinite { at } => {
                write!(f, "non-finite value in the iteration after {at} matvecs")
            }
            Breakdown::Stagnation { at } => {
                write!(f, "residual stagnated across restarts after {at} matvecs")
            }
            Breakdown::IndefiniteCurvature { at } => {
                write!(f, "indefinite curvature direction at iteration {at}")
            }
        }
    }
}

/// What one rung of the [`crate::robust::solve_robust`] ladder did.
#[derive(Clone, Debug, PartialEq)]
pub enum AttemptOutcome {
    /// The preconditioner could not even be built.
    FactorFailed(FactorError),
    /// The solve ran but did not converge (breakdown and/or residual above
    /// target).
    SolveFailed {
        rel_residual: f64,
        matvecs: usize,
        breakdown: Option<Breakdown>,
    },
    /// The solve converged — this attempt produced the reported solution.
    Converged { rel_residual: f64, matvecs: usize },
}

/// One rung of the degradation ladder, as tried.
#[derive(Clone, Debug, PartialEq)]
pub struct AttemptRecord {
    /// Human-readable preconditioner description, e.g. `ILUT(10,1e-4)`,
    /// `ILUT+shift(1e-4)`, `Jacobi`, `none`.
    pub preconditioner: String,
    pub outcome: AttemptOutcome,
}

/// One survived rank loss: when it happened, who died, and how long the
/// agreement round took. Recorded by the distributed self-healing driver
/// ([`crate::dist_robust::dist_solve_robust`]); serial solves never populate
/// these.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// Recovery epoch entered (1 = first loss this solve adopted).
    pub epoch: u64,
    /// The *cumulative* dead set at adoption, ascending.
    pub lost: Vec<usize>,
    /// Simulated seconds from catching the loss to the agreed new world
    /// (world adoption + the recovery agreement round; re-planning and
    /// re-factorisation are charged to the resumed solve itself).
    pub time_to_recover: f64,
}

impl std::fmt::Display for RecoveryRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: lost rank(s) {:?}, recovered in {:.3e}s",
            self.epoch, self.lost, self.time_to_recover
        )
    }
}

/// The structured outcome of a robust solve: which rungs were tried, which
/// one produced the answer, and how good that answer is.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The best solution found (from the converged attempt, or the
    /// best-residual attempt if nothing converged).
    pub x: Vec<f64>,
    pub converged: bool,
    /// True relative residual of `x`.
    pub rel_residual: f64,
    /// Every rung tried, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Index into `attempts` of the rung that produced `x`.
    pub chosen: usize,
    /// Rank losses survived on the way to `x` (always empty for serial
    /// solves).
    pub recoveries: Vec<RecoveryRecord>,
}

impl SolveReport {
    /// Name of the preconditioner that produced the reported solution.
    pub fn fallback(&self) -> &str {
        &self.attempts[self.chosen].preconditioner
    }

    /// True when the primary (first) attempt already converged — no
    /// degradation was needed.
    pub fn primary_succeeded(&self) -> bool {
        self.chosen == 0 && self.converged
    }

    /// One-line summary for logs: `converged via Jacobi (rel 3.1e-9) after
    /// [ILUT(10,1e-4): factor failed: zero pivot at row 7]`.
    pub fn summary(&self) -> String {
        let status = if self.converged {
            "converged"
        } else {
            "FAILED to converge"
        };
        let mut s = format!(
            "{status} via {} (rel {:.1e})",
            self.fallback(),
            self.rel_residual
        );
        let skipped: Vec<String> = self
            .attempts
            .iter()
            .take(self.chosen)
            .map(|a| {
                let why = match &a.outcome {
                    AttemptOutcome::FactorFailed(e) => format!("factor failed: {e}"),
                    AttemptOutcome::SolveFailed {
                        rel_residual,
                        breakdown,
                        ..
                    } => match breakdown {
                        Some(b) => format!("{b}"),
                        None => format!("stalled at rel {rel_residual:.1e}"),
                    },
                    AttemptOutcome::Converged { .. } => "converged".to_string(),
                };
                format!("{}: {}", a.preconditioner, why)
            })
            .collect();
        if !skipped.is_empty() {
            s.push_str(&format!(" after [{}]", skipped.join("; ")));
        }
        if !self.recoveries.is_empty() {
            let named: Vec<String> = self.recoveries.iter().map(|r| r.to_string()).collect();
            s.push_str(&format!(" surviving [{}]", named.join("; ")));
        }
        s
    }
}
