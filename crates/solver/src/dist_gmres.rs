//! Distributed restarted GMRES on the `pilut-par` virtual machine.
//!
//! Vectors are distributed in local-view order (interiors then interfaces of
//! each rank). Inner products are all-reduces, the matrix–vector product is
//! any [`DistOperator`] — canonically [`DistCsr`](pilut_core::dist::op::DistCsr),
//! the planned boundary exchange of [`pilut_core::dist::spmv`] — and the
//! preconditioner action is either a diagonal scaling or the parallel
//! ILUT/ILUT\* triangular solves of [`pilut_core::trisolve`]. The small
//! Hessenberg least-squares recurrence is replicated on every rank — the
//! deterministic reduction tree guarantees bit-identical replicas.

use pilut_core::dist::op::DistOperator;
use pilut_core::dist::{DistMatrix, LocalView};
use pilut_core::parallel::RankFactors;
use pilut_core::trisolve::{dist_solve, dist_solve_into, SolveScratch, TrisolvePlan};
use pilut_par::Ctx;

use crate::gmres::GmresOptions;
use crate::report::Breakdown;

/// A distributed preconditioner: maps a local residual slice to a local
/// correction slice. Collective — every rank calls `apply` together.
pub trait DistPrecond {
    fn apply(&mut self, ctx: &mut Ctx, local: &LocalView, r: &[f64]) -> Vec<f64>;

    /// Applies the correction into a caller-owned buffer — the
    /// zero-allocation steady-state form. The default delegates to
    /// [`DistPrecond::apply`]; the in-repo implementations override it
    /// with in-place solves.
    fn apply_into(&mut self, ctx: &mut Ctx, local: &LocalView, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(&self.apply(ctx, local, r));
    }

    fn name(&self) -> String;
}

/// No preconditioning.
pub struct DistIdentity;

impl DistPrecond for DistIdentity {
    fn apply(&mut self, _ctx: &mut Ctx, _local: &LocalView, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }

    fn apply_into(&mut self, _ctx: &mut Ctx, _local: &LocalView, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn name(&self) -> String {
        "none".into()
    }
}

/// Diagonal (Jacobi) preconditioning — the paper's baseline.
pub struct DistDiagonal {
    inv_diag: Vec<f64>,
}

impl DistDiagonal {
    /// Extracts the locally owned diagonal for Jacobi preconditioning.
    ///
    /// # Panics
    /// Panics on a zero or non-finite diagonal entry; use
    /// [`DistDiagonal::try_new`] for a typed error.
    pub fn new(dm: &DistMatrix, local: &LocalView) -> Self {
        // lint: allow(unwrap): documented panic on unusable diagonals
        Self::try_new(dm, local).expect("unusable diagonal")
    }

    /// Fallible construction: reports the first locally owned row with an
    /// unusable diagonal instead of panicking.
    pub fn try_new(
        dm: &DistMatrix,
        local: &LocalView,
    ) -> Result<Self, pilut_core::options::FactorError> {
        let mut inv_diag = Vec::with_capacity(local.nodes.len());
        for &g in &local.nodes {
            let d = dm.matrix().get(g, g).unwrap_or(0.0);
            if !d.is_finite() {
                return Err(pilut_core::options::FactorError::NonFinite { row: g });
            }
            // lint: allow(float-eq): exact zero-diagonal guard
            if d == 0.0 {
                return Err(pilut_core::options::FactorError::ZeroPivot { row: g });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(DistDiagonal { inv_diag })
    }
}

impl DistPrecond for DistDiagonal {
    fn apply(&mut self, ctx: &mut Ctx, _local: &LocalView, r: &[f64]) -> Vec<f64> {
        ctx.work(r.len() as f64);
        r.iter().zip(&self.inv_diag).map(|(x, d)| x * d).collect()
    }

    fn apply_into(&mut self, ctx: &mut Ctx, _local: &LocalView, r: &[f64], z: &mut [f64]) {
        ctx.work(r.len() as f64);
        for ((zi, x), d) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = x * d;
        }
    }

    fn name(&self) -> String {
        "Diagonal".into()
    }
}

/// Parallel incomplete-LU preconditioning: forward + backward substitution
/// through the distributed factors.
pub struct DistIlu {
    pub rf: RankFactors,
    pub plan: TrisolvePlan,
    pub label: String,
    /// Reusable sweep workspace: built with the plan so every steady-state
    /// apply runs the zero-allocation [`dist_solve_into`] path.
    scratch: SolveScratch,
}

impl DistIlu {
    /// Builds the triangular-solve plan (collective).
    pub fn new(ctx: &mut Ctx, dm: &DistMatrix, local: &LocalView, rf: RankFactors) -> Self {
        let plan = TrisolvePlan::build(ctx, dm, local, &rf);
        let scratch = SolveScratch::build(local, &plan);
        DistIlu {
            rf,
            plan,
            label: "ILU".into(),
            scratch,
        }
    }

    /// Sets the label used in convergence reports.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl DistPrecond for DistIlu {
    fn apply(&mut self, ctx: &mut Ctx, local: &LocalView, r: &[f64]) -> Vec<f64> {
        dist_solve(ctx, local, &self.rf, &self.plan, r)
    }

    fn apply_into(&mut self, ctx: &mut Ctx, local: &LocalView, r: &[f64], z: &mut [f64]) {
        dist_solve_into(ctx, local, &self.rf, &self.plan, r, &mut self.scratch, z);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Outcome of a distributed solve (per rank; scalar fields identical on all
/// ranks).
#[derive(Clone, Debug)]
pub struct DistGmresResult {
    /// This rank's slice of the solution, in local-view order.
    pub x_local: Vec<f64>,
    pub converged: bool,
    pub matvecs: usize,
    pub rel_residual: f64,
    /// Why the iteration stopped early (identical on every rank: the
    /// detection runs on all-reduced scalars, so every rank sees the same
    /// values and takes the same branch). `None` on clean convergence or a
    /// plain budget stop.
    pub breakdown: Option<Breakdown>,
}

fn ddot(ctx: &mut Ctx, a: &[f64], b: &[f64]) -> f64 {
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    ctx.work(2.0 * a.len() as f64);
    ctx.all_reduce_sum(local)
}

fn dnorm(ctx: &mut Ctx, a: &[f64]) -> f64 {
    ddot(ctx, a, a).sqrt()
}

/// Right-preconditioned GMRES(restart) over a distributed operator.
/// Collective: every rank calls with its own slices.
pub fn dist_gmres(
    ctx: &mut Ctx,
    op: &mut dyn DistOperator,
    local: &LocalView,
    precond: &mut dyn DistPrecond,
    b: &[f64],
    opts: &GmresOptions,
) -> DistGmresResult {
    dist_gmres_from(ctx, op, local, precond, b, opts, None, None)
}

/// [`dist_gmres`] with a warm start and a checkpoint hook — the entry point
/// of the self-healing solve ladder (`crate::dist_robust`).
///
/// `x0` seeds the iterate (zeros when `None`); `ckpt`, when supplied, is
/// overwritten with the current iterate at the end of **every outer restart
/// cycle**. Because the write happens between collectives, a rank-loss
/// unwind anywhere inside the next cycle leaves `ckpt` holding a complete,
/// consistent iterate from at most one restart ago — the recovery driver
/// re-seeds the shrunk-world solve from it instead of starting over.
/// Checkpoint cadence is therefore the restart length; see DESIGN §14.
#[allow(clippy::too_many_arguments)]
pub fn dist_gmres_from(
    ctx: &mut Ctx,
    op: &mut dyn DistOperator,
    local: &LocalView,
    precond: &mut dyn DistPrecond,
    b: &[f64],
    opts: &GmresOptions,
    x0: Option<Vec<f64>>,
    mut ckpt: Option<&mut Vec<f64>>,
) -> DistGmresResult {
    let nl = local.len();
    assert_eq!(b.len(), nl);
    assert_eq!(op.local_len(), nl);
    let mut x = x0.unwrap_or_else(|| vec![0.0; nl]);
    assert_eq!(x.len(), nl, "warm start must be in local-view order");
    let b_norm = dnorm(ctx, b);
    // lint: allow(float-eq): exact zero-RHS short-circuit
    if b_norm == 0.0 {
        // The exact solution of `A x = 0` is zero regardless of any warm
        // start: return zeros, not `x0`.
        return DistGmresResult {
            x_local: vec![0.0; nl],
            converged: true,
            matvecs: 0,
            rel_residual: 0.0,
            breakdown: None,
        };
    }
    let target = opts.rtol * b_norm;
    let m = opts.restart.max(1);
    let mut matvecs = 0usize;
    // Workspace, allocated once per solve (see the serial `gmres` twin):
    // every restart cycle and inner iteration reuses it, and the inner loop
    // runs under the `gmres_inner` audit region with zero steady
    // acquisitions.
    let mut v: Vec<Vec<f64>> = (0..=m).map(|_| vec![0.0; nl]).collect();
    let mut h = vec![vec![0.0f64; m]; m + 1];
    let mut cs = vec![0.0f64; m];
    let mut sn = vec![0.0f64; m];
    let mut g = vec![0.0f64; m + 1];
    let mut ax = vec![0.0; nl];
    let mut z = vec![0.0; nl];
    let mut w = vec![0.0; nl];
    let mut y = vec![0.0f64; m];
    let mut vy = vec![0.0; nl];
    let mut breakdown: Option<Breakdown> = None;
    let mut prev_beta = f64::INFINITY;
    let mut stalled_cycles = 0usize;

    'outer: loop {
        op.apply_into(ctx, &x, &mut ax);
        matvecs += 1;
        for ((ri, bi), yi) in v[0].iter_mut().zip(b).zip(&ax) {
            *ri = bi - yi;
        }
        let beta = dnorm(ctx, &v[0]);
        if !beta.is_finite() {
            breakdown = Some(Breakdown::NonFinite { at: matvecs });
            break 'outer;
        }
        if beta <= target || matvecs >= opts.max_matvecs {
            return DistGmresResult {
                x_local: x,
                converged: beta <= target,
                matvecs,
                rel_residual: beta / b_norm,
                breakdown: None,
            };
        }
        if beta >= prev_beta * (1.0 - 1e-12) {
            stalled_cycles += 1;
            if stalled_cycles >= 2 {
                breakdown = Some(Breakdown::Stagnation { at: matvecs });
                break 'outer;
            }
        } else {
            stalled_cycles = 0;
        }
        prev_beta = beta;
        for ri in &mut v[0] {
            *ri /= beta;
        }
        ctx.work(nl as f64);
        for col in h.iter_mut() {
            col.fill(0.0);
        }
        g.fill(0.0);
        g[0] = beta;
        let mut inner = 0usize;

        let audit = pilut_allocaudit::region("gmres_inner");
        for j in 0..m {
            precond.apply_into(ctx, local, &v[j], &mut z);
            op.apply_into(ctx, &z, &mut w);
            matvecs += 1;
            for i in 0..=j {
                let hij = ddot(ctx, &w, &v[i]);
                h[i][j] = hij;
                for (wk, vk) in w.iter_mut().zip(&v[i]) {
                    *wk -= hij * vk;
                }
                ctx.work(2.0 * nl as f64);
            }
            let wn = dnorm(ctx, &w);
            if !wn.is_finite() {
                // Poisoned column (same verdict on every rank): discard it
                // and solve with the clean prefix below.
                breakdown = Some(Breakdown::NonFinite { at: matvecs });
                inner = j;
                break;
            }
            h[j + 1][j] = wn;
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            let denom = (h[j][j] * h[j][j] + wn * wn).sqrt();
            // lint: allow(float-eq): exact-zero guard before division
            if denom == 0.0 {
                inner = j;
                break;
            }
            cs[j] = h[j][j] / denom;
            sn[j] = wn / denom;
            h[j][j] = denom;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            inner = j + 1;
            // lint: allow(float-eq): exact (lucky) breakdown test
            let lucky = wn == 0.0;
            if !lucky {
                for (next, wi) in v[j + 1].iter_mut().zip(&w) {
                    *next = wi / wn;
                }
                ctx.work(nl as f64);
            }
            if g[j + 1].abs() <= target || matvecs >= opts.max_matvecs || lucky {
                break;
            }
        }
        y[..inner].fill(0.0);
        for i in (0..inner).rev() {
            let mut s = g[i];
            for k in i + 1..inner {
                s -= h[i][k] * y[k];
            }
            y[i] = s / h[i][i];
        }
        vy.fill(0.0);
        for (i, yi) in y.iter().take(inner).enumerate() {
            for (acc, vk) in vy.iter_mut().zip(&v[i]) {
                *acc += yi * vk;
            }
        }
        ctx.work(2.0 * inner as f64 * nl as f64);
        precond.apply_into(ctx, local, &vy, &mut z);
        drop(audit);
        // Guard the update collectively: every rank must agree on whether
        // the correction is applied, so the verdict is an all-reduce.
        let poisoned = z.iter().any(|zi| !zi.is_finite()) as u64;
        if ctx.all_reduce_sum_u64(poisoned) == 0 {
            for (xi, zi) in x.iter_mut().zip(&z) {
                *xi += zi;
            }
        } else {
            breakdown.get_or_insert(Breakdown::NonFinite { at: matvecs });
        }
        ctx.work(nl as f64);
        // End of the restart cycle: the iterate is consistent on every rank
        // (the correction above was applied under a collective verdict), so
        // this is the safe point to checkpoint for rank-loss recovery.
        if let Some(c) = ckpt.as_deref_mut() {
            c.clear();
            c.extend_from_slice(&x);
        }
        if breakdown.is_some() || matvecs >= opts.max_matvecs {
            break 'outer;
        }
    }
    // Budget exhausted or breakdown: report the true residual (reusing the
    // workspace buffers).
    op.apply_into(ctx, &x, &mut ax);
    for ((ri, bi), yi) in w.iter_mut().zip(b).zip(&ax) {
        *ri = bi - yi;
    }
    let mut rel = dnorm(ctx, &w) / b_norm;
    if !rel.is_finite() {
        rel = f64::INFINITY;
    }
    DistGmresResult {
        converged: rel <= opts.rtol,
        x_local: x,
        matvecs,
        rel_residual: rel,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_core::dist::op::DistCsr;
    use pilut_core::options::IlutOptions;
    use pilut_core::parallel::par_ilut;
    use pilut_par::{Machine, MachineModel};
    use pilut_sparse::gen;

    /// Runs distributed GMRES and returns (global x, matvecs, converged).
    fn solve(
        a: pilut_sparse::CsrMatrix,
        p: usize,
        ilut_opts: Option<IlutOptions>,
        opts: GmresOptions,
    ) -> (Vec<f64>, usize, bool) {
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b_global = a.spmv_owned(&x_true);
        let dm = DistMatrix::from_matrix(a, p, 23);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
            let mut pre: Box<dyn DistPrecond> = match &ilut_opts {
                Some(io) => {
                    let rf = par_ilut(ctx, &dm, &local, io).unwrap();
                    Box::new(DistIlu::new(ctx, &dm, &local, rf))
                }
                None => Box::new(DistDiagonal::new(&dm, &local)),
            };
            let r = dist_gmres(ctx, &mut op, &local, pre.as_mut(), &b, &opts);
            (local.nodes.clone(), r)
        });
        let mut x = vec![f64::NAN; n];
        let mut mv = 0;
        let mut conv = true;
        for (nodes, r) in out.results {
            for (g, v) in nodes.into_iter().zip(r.x_local) {
                x[g] = v;
            }
            mv = r.matvecs;
            conv = r.converged;
        }
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(!conv || err < 1e-4, "converged but wrong: err={err}");
        (x, mv, conv)
    }

    #[test]
    fn diagonal_preconditioned_solve_converges() {
        let a = gen::laplace_2d(10, 10);
        let (_, mv, conv) = solve(a, 3, None, GmresOptions::default());
        assert!(conv, "did not converge in {mv} matvecs");
    }

    #[test]
    fn parallel_ilut_preconditioner_beats_diagonal() {
        let a = gen::convection_diffusion_2d(14, 14, 8.0, 4.0);
        let (_, mv_diag, c1) = solve(a.clone(), 4, None, GmresOptions::default());
        let (_, mv_ilut, c2) = solve(
            a,
            4,
            Some(IlutOptions::new(10, 1e-4)),
            GmresOptions::default(),
        );
        assert!(c1 && c2);
        assert!(
            mv_ilut * 2 < mv_diag,
            "parallel ILUT ({mv_ilut}) should need far fewer matvecs than diagonal ({mv_diag})"
        );
    }

    #[test]
    fn ilut_star_preconditioner_converges_comparably() {
        let a = gen::laplace_3d(6, 6, 6);
        let (_, mv_ilut, c1) = solve(
            a.clone(),
            3,
            Some(IlutOptions::new(10, 1e-4)),
            GmresOptions::default(),
        );
        let (_, mv_star, c2) = solve(
            a,
            3,
            Some(IlutOptions::star(10, 1e-4, 2)),
            GmresOptions::default(),
        );
        assert!(c1 && c2);
        // The paper finds the two comparable in quality; allow generous slack.
        assert!(
            mv_star <= 3 * mv_ilut.max(1),
            "ILUT* quality collapsed: {mv_star} vs {mv_ilut}"
        );
    }

    #[test]
    fn small_restart_matches_paper_setup() {
        let a = gen::laplace_2d(12, 12);
        let (_, _, conv) = solve(
            a,
            2,
            Some(IlutOptions::new(5, 1e-2)),
            GmresOptions {
                restart: 10,
                ..Default::default()
            },
        );
        assert!(conv);
    }

    #[test]
    fn matvec_budget_respected() {
        let a = gen::laplace_2d(12, 12);
        let (_, mv, conv) = solve(
            a,
            2,
            None,
            GmresOptions {
                max_matvecs: 5,
                rtol: 1e-12,
                ..Default::default()
            },
        );
        assert!(!conv);
        assert!(mv <= 6);
    }

    #[test]
    fn warm_start_at_the_solution_converges_immediately() {
        let a = gen::laplace_2d(8, 8);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b_global = a.spmv_owned(&x_true);
        let dm = DistMatrix::from_matrix(a, 3, 23);
        let out = Machine::run_checked(3, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
            let x0: Vec<f64> = local.nodes.iter().map(|&g| x_true[g]).collect();
            let mut pre = DistIdentity;
            let r = dist_gmres_from(
                ctx,
                &mut op,
                &local,
                &mut pre,
                &b,
                &GmresOptions::default(),
                Some(x0),
                None,
            );
            (r.converged, r.matvecs)
        });
        for (conv, mv) in out.results {
            assert!(conv);
            assert_eq!(mv, 1, "an exact warm start costs one residual matvec");
        }
    }

    #[test]
    fn zero_rhs_returns_zeros_not_the_warm_start() {
        let a = gen::laplace_2d(6, 6);
        let dm = DistMatrix::from_matrix(a, 2, 23);
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            let b = vec![0.0; local.len()];
            let x0 = vec![7.5; local.len()];
            let mut pre = DistIdentity;
            let r = dist_gmres_from(
                ctx,
                &mut op,
                &local,
                &mut pre,
                &b,
                &GmresOptions::default(),
                Some(x0),
                None,
            );
            (r.converged, r.x_local)
        });
        for (conv, x) in out.results {
            assert!(conv);
            assert!(x.iter().all(|&v| v == 0.0), "Ax = 0 has the zero solution");
        }
    }

    #[test]
    fn checkpoint_holds_the_iterate_of_a_completed_cycle() {
        // Force at least one full restart cycle (tiny restart length), then
        // check the checkpoint matches the final iterate: the last completed
        // cycle's x is exactly what convergence was declared on.
        let a = gen::laplace_2d(8, 8);
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b_global = a.spmv_owned(&x_true);
        let dm = DistMatrix::from_matrix(a, 2, 23);
        let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
            let mut pre = DistDiagonal::new(&dm, &local);
            let mut ckpt = Vec::new();
            let r = dist_gmres_from(
                ctx,
                &mut op,
                &local,
                &mut pre,
                &b,
                &GmresOptions {
                    restart: 5,
                    ..Default::default()
                },
                None,
                Some(&mut ckpt),
            );
            (r.converged, r.x_local, ckpt)
        });
        for (conv, x, ckpt) in out.results {
            assert!(conv);
            assert_eq!(
                x, ckpt,
                "convergence is detected at the top of a cycle, so the last \
                 checkpoint and the returned iterate coincide"
            );
        }
    }
}
