//! Restarted GMRES (Saad & Schultz 1986), serial and distributed.
//!
//! The paper evaluates its preconditioners inside GMRES(10)/GMRES(50)
//! (Table 3): right-preconditioned, modified Gram–Schmidt Arnoldi, Givens
//! rotations for the least-squares problem, restart after `restart` inner
//! steps, convergence when the residual norm drops by a fixed factor.
//!
//! * [`gmres()`] — the serial solver over [`pilut_core::precond::Preconditioner`];
//! * [`dist_gmres()`] — the distributed solver running on the `pilut-par`
//!   virtual machine, with distributed SpMV, all-reduce inner products and
//!   the parallel triangular solves as the preconditioner action.

pub mod cg;
pub mod dist_gmres;
pub mod gmres;

pub use cg::{cg, CgOptions, CgResult, IcPreconditioner};
pub use dist_gmres::{dist_gmres, DistDiagonal, DistIdentity, DistIlu, DistPrecond};
pub use gmres::{gmres, GmresOptions, GmresResult};
