//! Restarted GMRES (Saad & Schultz 1986), serial and distributed.
//!
//! The paper evaluates its preconditioners inside GMRES(10)/GMRES(50)
//! (Table 3): right-preconditioned, modified Gram–Schmidt Arnoldi, Givens
//! rotations for the least-squares problem, restart after `restart` inner
//! steps, convergence when the residual norm drops by a fixed factor.
//!
//! * [`gmres()`] — the serial solver over [`pilut_core::precond::Preconditioner`];
//! * [`dist_gmres()`] — the distributed solver running on the `pilut-par`
//!   virtual machine, with distributed SpMV, all-reduce inner products and
//!   the parallel triangular solves as the preconditioner action.

//! Robustness layer: all solvers detect numerical breakdown (non-finite
//! Arnoldi/recurrence values, stagnation across restarts, indefinite
//! curvature in CG) and report it as a typed [`Breakdown`] instead of
//! looping on garbage; [`solve_robust`] wraps GMRES in a fallback ladder
//! (caller's ILUT → boosted-shift refactorization → Jacobi →
//! unpreconditioned) and returns a structured [`SolveReport`] naming the
//! rung that produced the answer.

//! Rank-loss recovery: [`dist_solve_robust`] wraps the distributed solve in
//! the lost-rank rung — a kill mid-solve (under `MachineBuilder::recovery`)
//! shrinks the world, rebuilds plans and factors, warm-starts GMRES from a
//! per-restart-cycle checkpoint, and records the recovery in the report.

pub mod cg;
pub mod dist_gmres;
pub mod dist_robust;
pub mod gmres;
pub mod report;
pub mod robust;

pub use cg::{cg, CgOptions, CgResult, IcPreconditioner};
pub use dist_gmres::{
    dist_gmres, dist_gmres_from, DistDiagonal, DistGmresResult, DistIdentity, DistIlu, DistPrecond,
};
pub use dist_robust::{dist_solve_robust, DistSolveReport, SolveError};
pub use gmres::{gmres, GmresOptions, GmresResult};
pub use report::{AttemptOutcome, AttemptRecord, Breakdown, RecoveryRecord, SolveReport};
pub use robust::solve_robust;
