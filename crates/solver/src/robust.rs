//! Graceful degradation: a solve that survives factorization breakdown.
//!
//! [`solve_robust`] climbs down a fixed ladder until something converges:
//!
//! 1. **Primary**: ILUT with the caller's options (whatever breakdown
//!    policy they chose, `Abort` by default).
//! 2. **Boosted-shift refactorization**: the same ILUT but under an
//!    aggressive [`BreakdownPolicy::Shift`] — repairs every unusable pivot
//!    with an escalating diagonal boost, trading preconditioner quality for
//!    existence.
//! 3. **Jacobi**: plain diagonal scaling via
//!    [`DiagonalPreconditioner::try_new`] (skipped when the diagonal itself
//!    is unusable).
//! 4. **Unpreconditioned** GMRES — always constructible.
//!
//! Every rung is recorded in the returned [`SolveReport`], so a caller (or
//! an operator reading logs) can see exactly which fallback produced the
//! answer and why the better ones were rejected.

use crate::gmres::{gmres, GmresOptions, GmresResult};
use crate::report::{AttemptOutcome, AttemptRecord, SolveReport};
use pilut_core::options::{BreakdownPolicy, IlutOptions};
use pilut_core::precond::{DiagonalPreconditioner, IdentityPreconditioner, IluPreconditioner};
use pilut_core::serial::ilut;
use pilut_sparse::CsrMatrix;

/// The shift policy rung 2 retries with: strong enough to survive rows the
/// caller's own policy could not, escalating fast on repeated breakdowns.
fn boosted_shift() -> BreakdownPolicy {
    BreakdownPolicy::Shift {
        initial: 1e-4,
        growth: 100.0,
    }
}

/// Solves `A x = b` with ILUT-preconditioned GMRES, degrading gracefully on
/// factorization or solver breakdown instead of panicking or returning
/// garbage. See the module docs for the ladder; the report names the rung
/// that produced the solution.
pub fn solve_robust(
    a: &CsrMatrix,
    b: &[f64],
    ilut_opts: &IlutOptions,
    gmres_opts: &GmresOptions,
) -> SolveReport {
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    // Best non-converged fallback seen so far: (attempt index, result).
    let mut best: Option<(usize, GmresResult)> = None;

    let try_rung = |attempts: &mut Vec<AttemptRecord>,
                    best: &mut Option<(usize, GmresResult)>,
                    name: String,
                    outcome: Result<GmresResult, pilut_core::options::FactorError>|
     -> Option<SolveReport> {
        let idx = attempts.len();
        match outcome {
            Err(e) => {
                attempts.push(AttemptRecord {
                    preconditioner: name,
                    outcome: AttemptOutcome::FactorFailed(e),
                });
                None
            }
            Ok(r) if r.converged => {
                attempts.push(AttemptRecord {
                    preconditioner: name,
                    outcome: AttemptOutcome::Converged {
                        rel_residual: r.rel_residual,
                        matvecs: r.matvecs,
                    },
                });
                Some(SolveReport {
                    x: r.x,
                    converged: true,
                    rel_residual: r.rel_residual,
                    attempts: std::mem::take(attempts),
                    chosen: idx,
                    recoveries: Vec::new(),
                })
            }
            Ok(r) => {
                attempts.push(AttemptRecord {
                    preconditioner: name,
                    outcome: AttemptOutcome::SolveFailed {
                        rel_residual: r.rel_residual,
                        matvecs: r.matvecs,
                        breakdown: r.breakdown,
                    },
                });
                let better = match best {
                    None => true,
                    Some((_, prev)) => r.rel_residual < prev.rel_residual,
                };
                if better && r.rel_residual.is_finite() {
                    *best = Some((idx, r));
                }
                None
            }
        }
    };

    // Rung 1: the caller's own ILUT options.
    let primary = ilut(a, ilut_opts).map(|f| {
        gmres(
            a,
            b,
            &IluPreconditioner::with_label(f, ilut_opts.name()),
            gmres_opts,
        )
    });
    if let Some(report) = try_rung(&mut attempts, &mut best, ilut_opts.name(), primary) {
        return report;
    }

    // Rung 2: refactor under the boosted shift (skip when the caller was
    // already running an equivalent policy — retrying it would be a no-op).
    if ilut_opts.breakdown != boosted_shift() {
        let opts2 = ilut_opts.clone().with_breakdown(boosted_shift());
        let name = format!("{}+shift(1e-4)", ilut_opts.name());
        let shifted = ilut(a, &opts2).map(|f| {
            gmres(
                a,
                b,
                &IluPreconditioner::with_label(f, name.clone()),
                gmres_opts,
            )
        });
        if let Some(report) = try_rung(&mut attempts, &mut best, name, shifted) {
            return report;
        }
    }

    // Rung 3: Jacobi.
    let jacobi = DiagonalPreconditioner::try_new(a).map(|p| gmres(a, b, &p, gmres_opts));
    if let Some(report) = try_rung(&mut attempts, &mut best, "Jacobi".into(), jacobi) {
        return report;
    }

    // Rung 4: unpreconditioned — always constructible.
    let plain = gmres(a, b, &IdentityPreconditioner, gmres_opts);
    if let Some(report) = try_rung(&mut attempts, &mut best, "none".into(), Ok(plain)) {
        return report;
    }

    // Nothing converged: report the best fallback we saw (the identity rung
    // always yields a finite-residual candidate, so `best` is set unless
    // every single solve returned a non-finite residual).
    match best {
        Some((idx, r)) => SolveReport {
            x: r.x,
            converged: false,
            rel_residual: r.rel_residual,
            attempts,
            chosen: idx,
            recoveries: Vec::new(),
        },
        None => SolveReport {
            x: vec![0.0; a.n_rows()],
            converged: false,
            rel_residual: f64::INFINITY,
            chosen: attempts.len() - 1,
            attempts,
            recoveries: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Breakdown;
    use pilut_sparse::gen;
    use pilut_sparse::vec_ops::norm2;
    use pilut_sparse::CooMatrix;

    /// Diagonally dominant except row 0, whose diagonal entry is removed:
    /// no earlier row can fill the pivot back in, so plain ILUT under
    /// `Abort` dies and the shift rung must carry the solve.
    fn zero_diag_problem() -> (CsrMatrix, Vec<f64>) {
        let lap = gen::laplace_2d(6, 6);
        let n = lap.n_rows();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let (cols, vals) = lap.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if i == 0 && j == 0 {
                    continue;
                }
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let b = a.spmv_owned(&vec![1.0; n]);
        (a, b)
    }

    #[test]
    fn primary_path_reports_no_fallback() {
        let a = gen::laplace_2d(8, 8);
        let b = a.spmv_owned(&vec![1.0; 64]);
        let r = solve_robust(&a, &b, &IlutOptions::new(8, 1e-3), &GmresOptions::default());
        assert!(r.converged && r.primary_succeeded(), "{}", r.summary());
        assert_eq!(r.attempts.len(), 1);
    }

    #[test]
    fn zero_pivot_falls_back_to_boosted_shift() {
        let (a, b) = zero_diag_problem();
        let r = solve_robust(
            &a,
            &b,
            &IlutOptions::new(10, 1e-4),
            &GmresOptions::default(),
        );
        assert!(r.converged, "{}", r.summary());
        assert!(!r.primary_succeeded());
        assert!(
            matches!(r.attempts[0].outcome, AttemptOutcome::FactorFailed(_)),
            "{:?}",
            r.attempts[0]
        );
        assert!(r.fallback().contains("shift"), "{}", r.summary());
        // The answer must actually solve the system.
        let ax = a.spmv_owned(&r.x);
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(y, bi)| y - bi).collect();
        assert!(norm2(&resid) <= 1e-5 * norm2(&b).max(1.0));
    }

    #[test]
    fn report_names_every_rung_tried() {
        let (a, b) = zero_diag_problem();
        let r = solve_robust(
            &a,
            &b,
            &IlutOptions::new(10, 1e-4),
            &GmresOptions::default(),
        );
        let names: Vec<&str> = r
            .attempts
            .iter()
            .map(|a| a.preconditioner.as_str())
            .collect();
        assert!(names[0].starts_with("ILUT("), "{names:?}");
        assert!(names.len() >= 2, "{names:?}");
        let s = r.summary();
        assert!(s.contains("converged via"), "{s}");
    }

    #[test]
    fn singular_system_fails_with_a_structured_report() {
        // Exactly singular (a zero row): nothing can converge, but the
        // report must say so without panicking, with every rung recorded.
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 1.0);
        // Row 3 entirely zero.
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let r = solve_robust(
            &a,
            &b,
            &IlutOptions::new(4, 0.0),
            &GmresOptions {
                max_matvecs: 50,
                ..Default::default()
            },
        );
        assert!(!r.converged);
        assert_eq!(r.attempts.len(), 4, "{:?}", r.attempts);
        assert!(r.rel_residual.is_finite());
        assert!(r.summary().contains("FAILED"), "{}", r.summary());
    }

    #[test]
    fn stagnation_is_reported_as_breakdown() {
        // A rotation-like skew system with restart 1 makes restarted GMRES
        // stall: the first Arnoldi step cannot reduce the residual.
        let n = 2;
        let mut coo = CooMatrix::new(n, n);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, -1.0);
        let a = coo.to_csr();
        let b = vec![1.0, 0.0];
        let r = crate::gmres::gmres(
            &a,
            &b,
            &pilut_core::precond::IdentityPreconditioner,
            &GmresOptions {
                restart: 1,
                rtol: 1e-10,
                max_matvecs: 1000,
            },
        );
        assert!(!r.converged);
        assert!(
            matches!(r.breakdown, Some(Breakdown::Stagnation { .. })),
            "expected stagnation, got {:?} after {} matvecs",
            r.breakdown,
            r.matvecs
        );
        assert!(
            r.matvecs < 100,
            "stagnation must abort early, used {} matvecs",
            r.matvecs
        );
    }
}
