//! Serial restarted GMRES with right preconditioning.

use crate::report::Breakdown;
use pilut_core::dist::op::LinOp;
use pilut_core::precond::Preconditioner;
use pilut_sparse::vec_ops::{axpy, norm2};

/// Solver parameters.
#[derive(Clone, Debug)]
pub struct GmresOptions {
    /// Inner (Krylov) dimension before restarting — GMRES(restart).
    pub restart: usize,
    /// Stop when `‖r‖ ≤ rtol · ‖r₀‖`.
    pub rtol: f64,
    /// Hard cap on matrix–vector products.
    pub max_matvecs: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 30,
            rtol: 1e-7,
            max_matvecs: 10_000,
        }
    }
}

/// Solver outcome.
#[derive(Clone, Debug)]
pub struct GmresResult {
    pub x: Vec<f64>,
    pub converged: bool,
    /// Matrix–vector products performed (the paper's "NMV" column).
    pub matvecs: usize,
    /// Final relative residual (true residual, recomputed).
    pub rel_residual: f64,
    /// Residual-norm history, one entry per inner iteration.
    pub history: Vec<f64>,
    /// Why the iteration stopped early, when it did not converge cleanly:
    /// non-finite poisoning of the Arnoldi process or stagnation across
    /// restart cycles. `None` on clean convergence or a plain budget stop.
    pub breakdown: Option<Breakdown>,
}

/// Solves `A x = b` with right-preconditioned GMRES(restart):
/// iterates on `A M⁻¹ u = b`, `x = M⁻¹ u`. The operator is any [`LinOp`]
/// (a plain `CsrMatrix` at every existing call site).
pub fn gmres<A: LinOp + ?Sized>(
    a: &A,
    b: &[f64],
    precond: &dyn Preconditioner,
    opts: &GmresOptions,
) -> GmresResult {
    let n = a.n_rows();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    let b_norm = norm2(b);
    // lint: allow(float-eq): exact zero-RHS short-circuit
    if b_norm == 0.0 {
        return GmresResult {
            x,
            converged: true,
            matvecs: 0,
            rel_residual: 0.0,
            history: vec![],
            breakdown: None,
        };
    }
    let target = opts.rtol * b_norm;
    let m = opts.restart.max(1);
    let mut matvecs = 0usize;
    // Workspace, allocated once per solve: the Krylov basis, the Hessenberg
    // column store, the rotation/right-hand-side arrays, and every length-n
    // staging vector the cycle body needs. Restart cycles and inner
    // iterations only ever reuse these (the inner loop runs under the
    // `gmres_inner` audit region and acquires nothing), which is what the
    // zero-steady-alloc bench gate measures.
    let mut v: Vec<Vec<f64>> = (0..=m).map(|_| vec![0.0; n]).collect(); // Krylov basis
    let mut h = vec![vec![0.0f64; m]; m + 1]; // Hessenberg (column major: h[i][j])
    let mut cs = vec![0.0f64; m];
    let mut sn = vec![0.0f64; m];
    let mut g = vec![0.0f64; m + 1];
    let mut ax = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut y = vec![0.0f64; m];
    let mut vy = vec![0.0; n];
    // One residual push per matvec plus one per cycle, never more — the
    // reservation keeps steady-state pushes off the allocator.
    let mut history = Vec::with_capacity(2 * opts.max_matvecs + 2);
    let mut breakdown: Option<Breakdown> = None;
    // Stagnation watch: restart cycles in a row without measurable progress.
    let mut prev_beta = f64::INFINITY;
    let mut stalled_cycles = 0usize;

    'outer: loop {
        // r = b - A x, normalized straight into the first basis vector.
        a.apply_into(&x, &mut ax);
        matvecs += 1;
        for ((ri, bi), yi) in v[0].iter_mut().zip(b).zip(&ax) {
            *ri = bi - yi;
        }
        let beta = norm2(&v[0]);
        history.push(beta);
        if !beta.is_finite() {
            breakdown = Some(Breakdown::NonFinite { at: matvecs });
            break 'outer;
        }
        if beta <= target || matvecs >= opts.max_matvecs {
            let converged = beta <= target;
            return GmresResult {
                x,
                converged,
                matvecs,
                rel_residual: beta / b_norm,
                history,
                breakdown: None,
            };
        }
        if beta >= prev_beta * (1.0 - 1e-12) {
            stalled_cycles += 1;
            if stalled_cycles >= 2 {
                breakdown = Some(Breakdown::Stagnation { at: matvecs });
                break 'outer;
            }
        } else {
            stalled_cycles = 0;
        }
        prev_beta = beta;
        for ri in &mut v[0] {
            *ri /= beta;
        }
        for col in h.iter_mut() {
            col.fill(0.0);
        }
        g.fill(0.0);
        g[0] = beta;
        let mut inner = 0usize;

        let audit = pilut_allocaudit::region("gmres_inner");
        for j in 0..m {
            // w = A M⁻¹ v_j.
            precond.apply_into(&v[j], &mut z);
            a.apply_into(&z, &mut w);
            matvecs += 1;
            // Modified Gram–Schmidt.
            for i in 0..=j {
                let hij = pilut_sparse::vec_ops::dot(&w, &v[i]);
                h[i][j] = hij;
                axpy(-hij, &v[i], &mut w);
            }
            let wn = norm2(&w);
            if !wn.is_finite() {
                // The preconditioner or SpMV poisoned this column (NaN/Inf
                // anywhere in w makes its norm non-finite): discard it and
                // fall through to the clean-prefix solve below.
                breakdown = Some(Breakdown::NonFinite { at: matvecs });
                inner = j;
                break;
            }
            h[j + 1][j] = wn;
            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation annihilating h[j+1][j].
            let denom = (h[j][j] * h[j][j] + wn * wn).sqrt();
            // lint: allow(float-eq): exact-zero guard before division
            if denom == 0.0 {
                // Exact breakdown: the solution lies in the current space.
                inner = j;
                break;
            }
            cs[j] = h[j][j] / denom;
            sn[j] = wn / denom;
            h[j][j] = denom;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            inner = j + 1;
            history.push(g[j + 1].abs());
            // lint: allow(float-eq): exact (lucky) breakdown test
            let lucky = wn == 0.0;
            if !lucky {
                for (next, wi) in v[j + 1].iter_mut().zip(&w) {
                    *next = wi / wn;
                }
            }
            if g[j + 1].abs() <= target || matvecs >= opts.max_matvecs || lucky {
                break;
            }
        }
        drop(audit);
        // Back-substitute y from the triangular H and accumulate x.
        y[..inner].fill(0.0);
        for i in (0..inner).rev() {
            let mut s = g[i];
            for k in i + 1..inner {
                s -= h[i][k] * y[k];
            }
            y[i] = s / h[i][i];
        }
        // x += M⁻¹ (V y), guarded: a poisoned correction is discarded
        // rather than destroying the best solution found so far.
        vy.fill(0.0);
        for (i, yi) in y[..inner].iter().enumerate() {
            axpy(*yi, &v[i], &mut vy);
        }
        precond.apply_into(&vy, &mut z);
        if z.iter().all(|zi| zi.is_finite()) {
            axpy(1.0, &z, &mut x);
        } else {
            breakdown.get_or_insert(Breakdown::NonFinite { at: matvecs });
        }
        if breakdown.is_some() || matvecs >= opts.max_matvecs {
            break 'outer;
        }
    }
    // Budget exhausted or breakdown: report the true residual.
    a.apply_into(&x, &mut ax);
    for ((ri, bi), yi) in w.iter_mut().zip(b).zip(&ax) {
        *ri = bi - yi;
    }
    let mut rel = norm2(&w) / b_norm;
    if !rel.is_finite() {
        rel = f64::INFINITY;
    }
    GmresResult {
        converged: rel <= opts.rtol,
        x,
        matvecs,
        rel_residual: rel,
        history,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilut_core::precond::{DiagonalPreconditioner, IdentityPreconditioner, IluPreconditioner};
    use pilut_core::serial::{ilut, IlutOptions};
    use pilut_sparse::{gen, CsrMatrix};

    fn problem(nx: usize, cx: f64) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = gen::convection_diffusion_2d(nx, nx, cx, cx / 2.0);
        let x_true = vec![1.0; a.n_rows()];
        let b = a.spmv_owned(&x_true);
        (a, b, x_true)
    }

    #[test]
    fn converges_unpreconditioned_on_small_spd() {
        let (a, b, x_true) = problem(8, 0.0);
        let r = gmres(&a, &b, &IdentityPreconditioner, &GmresOptions::default());
        assert!(r.converged, "relres {}", r.rel_residual);
        let err: f64 =
            r.x.iter()
                .zip(&x_true)
                .map(|(x, t)| (x - t).abs())
                .fold(0.0, f64::max);
        assert!(err < 1e-5, "err {err}");
    }

    #[test]
    fn ilut_preconditioning_cuts_matvec_count() {
        let (a, b, _) = problem(16, 12.0);
        let plain = gmres(
            &a,
            &b,
            &DiagonalPreconditioner::new(&a),
            &GmresOptions::default(),
        );
        let f = ilut(&a, &IlutOptions::new(10, 1e-4)).unwrap();
        let pre = gmres(&a, &b, &IluPreconditioner::new(f), &GmresOptions::default());
        assert!(pre.converged);
        assert!(
            plain.matvecs > 2 * pre.matvecs,
            "ILUT should slash iterations: diag {} vs ilut {}",
            plain.matvecs,
            pre.matvecs
        );
    }

    #[test]
    fn small_restart_still_converges() {
        let (a, b, _) = problem(12, 6.0);
        let f = ilut(&a, &IlutOptions::new(5, 1e-2)).unwrap();
        let r = gmres(
            &a,
            &b,
            &IluPreconditioner::new(f),
            &GmresOptions {
                restart: 5,
                ..Default::default()
            },
        );
        assert!(r.converged, "relres {}", r.rel_residual);
    }

    #[test]
    fn respects_matvec_budget() {
        let (a, b, _) = problem(16, 20.0);
        let r = gmres(
            &a,
            &b,
            &IdentityPreconditioner,
            &GmresOptions {
                max_matvecs: 7,
                rtol: 1e-14,
                ..Default::default()
            },
        );
        assert!(!r.converged);
        assert!(r.matvecs <= 7);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (a, _, _) = problem(5, 0.0);
        let r = gmres(
            &a,
            &vec![0.0; a.n_rows()],
            &IdentityPreconditioner,
            &GmresOptions::default(),
        );
        assert!(r.converged);
        assert!(r.x.iter().all(|&v| v == 0.0));
        assert_eq!(r.matvecs, 0);
    }

    #[test]
    fn history_is_monotone_within_cycles() {
        let (a, b, _) = problem(10, 4.0);
        let r = gmres(&a, &b, &IdentityPreconditioner, &GmresOptions::default());
        // GMRES residuals are non-increasing within a restart cycle; the
        // recorded history interleaves cycles, so check overall reduction.
        assert!(r.history.last().unwrap() < &r.history[0]);
    }

    #[test]
    fn reported_residual_is_true_residual() {
        let (a, b, _) = problem(9, 3.0);
        let f = ilut(&a, &IlutOptions::new(8, 1e-3)).unwrap();
        let r = gmres(&a, &b, &IluPreconditioner::new(f), &GmresOptions::default());
        let ax = a.spmv_owned(&r.x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(bi, yi)| bi - yi).collect();
        let true_rel = norm2(&resid) / norm2(&b);
        assert!((true_rel - r.rel_residual).abs() < 1e-8 || true_rel <= r.rel_residual * 1.5);
    }
}
