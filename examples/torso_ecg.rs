//! ECG torso scenario: the paper's TORSO workload end to end.
//!
//! Builds the inhomogeneous 3-D "human thorax" Laplace problem (heart /
//! lungs / muscle conductivities), distributes it over 8 simulated
//! processors with the multilevel k-way partitioner, factors it in parallel
//! with ILUT and ILUT\*, and solves with distributed GMRES(50) — reporting
//! the quantities the paper reports: interface fraction, independent-set
//! count q, simulated factor/solve times, and matvec counts.
//!
//! Run with: `cargo run --release --example torso_ecg`

use pilut::core::dist::op::{DistCsr, DistOperator};
use pilut::core::dist::DistMatrix;
use pilut::core::options::IlutOptions;
use pilut::core::parallel::par_ilut;
use pilut::par::{Machine, MachineModel};
use pilut::solver::dist_gmres::{dist_gmres, DistIlu};
use pilut::solver::gmres::GmresOptions;
use pilut::sparse::gen;

fn main() {
    let p = 8;
    let a = gen::fem_torso(28, 0x70_72_73_6f);
    println!(
        "TORSO surrogate: {} unknowns, {} nonzeros",
        a.n_rows(),
        a.nnz()
    );

    let dm = DistMatrix::from_matrix(a, p, 17);
    println!(
        "partitioned over {p} processors: {} interface nodes ({:.1}% of the mesh)",
        dm.total_interface(),
        100.0 * dm.total_interface() as f64 / dm.n() as f64
    );

    for opts in [IlutOptions::new(10, 1e-4), IlutOptions::star(10, 1e-4, 2)] {
        let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);

            ctx.barrier();
            let t0 = ctx.time();
            let rf = par_ilut(ctx, &dm, &local, &opts).expect("factorization failed");
            ctx.barrier();
            let t_factor = ctx.time() - t0;
            let q = rf.stats.levels;

            let ones = vec![1.0; local.len()];
            let b = op.apply(ctx, &ones);
            let mut pre = DistIlu::new(ctx, &dm, &local, rf);
            let gopts = GmresOptions {
                restart: 50,
                rtol: 1e-7,
                max_matvecs: 2000,
            };
            ctx.barrier();
            let t1 = ctx.time();
            let r = dist_gmres(ctx, &mut op, &local, &mut pre, &b, &gopts);
            ctx.barrier();
            let t_solve = ctx.time() - t1;
            (t_factor, t_solve, q, r.matvecs, r.converged)
        });
        let (tf, ts, q, nmv, conv) = out.results[0];
        println!(
            "{:<18} factor {:.3}s (q = {q:>3})   GMRES(50) solve {:.3}s, NMV = {nmv}, converged = {conv}",
            opts.name(),
            tf,
            ts
        );
    }
    println!("\n(times are simulated Cray T3D seconds from the pilut-par cost model)");
}
