//! Matrix Market workflow: persist a generated problem, read it back, and
//! compare ILU(0) / ILU(k) / ILUT preconditioners on it — the way one would
//! use the library on an external matrix file.
//!
//! Run with: `cargo run --release --example matrix_market [path/to/matrix.mtx]`

use pilut::core::precond::{IluPreconditioner, Preconditioner};
use pilut::core::serial::{ilu0, iluk, ilut, IlutOptions};
use pilut::solver::gmres::{gmres, GmresOptions};
use pilut::sparse::{gen, io};

fn main() {
    // Use a supplied file, or generate + round-trip one through the reader.
    let a = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path} …");
            io::read_matrix_market_file(&path).expect("failed to parse Matrix Market file")
        }
        None => {
            let a = gen::convection_diffusion_2d(48, 48, 20.0, 8.0);
            let path = std::env::temp_dir().join("pilut_example.mtx");
            io::write_matrix_market_file(&a, &path).expect("write failed");
            println!("no file given — wrote and re-read {}", path.display());
            io::read_matrix_market_file(&path).expect("round-trip failed")
        }
    };
    println!(
        "matrix: {} x {}, {} nonzeros",
        a.n_rows(),
        a.n_cols(),
        a.nnz()
    );
    println!("{}\n", pilut::sparse::MatrixStats::of(&a));

    let b = a.spmv_owned(&vec![1.0; a.n_rows()]);
    let opts = GmresOptions {
        restart: 30,
        rtol: 1e-7,
        max_matvecs: 4000,
    };
    let report = |label: &str, factors: pilut::core::LuFactors| {
        let fill = factors.nnz();
        let pre = IluPreconditioner::with_label(factors, label);
        let r = gmres(&a, &b, &pre, &opts);
        println!(
            "{:<16} fill = {:>8} ({:.2}x A)   NMV = {:>5}   converged = {}",
            pre.name(),
            fill,
            fill as f64 / a.nnz() as f64,
            r.matvecs,
            r.converged
        );
    };
    report("ILU(0)", ilu0(&a).expect("ILU(0) failed"));
    report("ILU(2)", iluk(&a, 2).expect("ILU(2) failed"));
    report(
        "ILUT(5,1e-2)",
        ilut(&a, &IlutOptions::new(5, 1e-2)).expect("ILUT failed"),
    );
    report(
        "ILUT(10,1e-4)",
        ilut(&a, &IlutOptions::new(10, 1e-4)).expect("ILUT failed"),
    );
    // Orderings matter to incomplete factorizations: compare the bandwidth
    // under the natural and the reverse Cuthill-McKee orderings.
    let g = pilut::graph::Graph::from_csr_pattern(&a);
    let ident = pilut::sparse::Permutation::identity(a.n_rows());
    let rcm = pilut::graph::reverse_cuthill_mckee(&g);
    println!(
        "\nbandwidth: natural {} vs RCM {}",
        pilut::graph::rcm::bandwidth(&g, &ident),
        pilut::graph::rcm::bandwidth(&g, &rcm)
    );
    println!("\n(threshold dropping adapts fill to the values, which is why ILUT");
    println!(" usually beats level-of-fill preconditioners at equal memory — §2)");
}
