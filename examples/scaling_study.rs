//! Scaling study: how factorization and triangular-solve times scale with
//! the processor count, and how ILUT\* changes the picture — a miniature of
//! the paper's Figures 4–6 runnable in seconds.
//!
//! Run with: `cargo run --release --example scaling_study`

use pilut::core::dist::DistMatrix;
use pilut::core::options::IlutOptions;
use pilut::core::parallel::par_ilut;
use pilut::core::trisolve::{dist_solve, TrisolvePlan};
use pilut::par::{Machine, MachineModel};
use pilut::sparse::gen;

fn measure(a: &pilut::sparse::CsrMatrix, p: usize, opts: &IlutOptions) -> (f64, f64, usize) {
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let out = Machine::run(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        ctx.barrier();
        let t0 = ctx.time();
        let rf = par_ilut(ctx, &dm, &local, opts).expect("factorization failed");
        ctx.barrier();
        let t_factor = ctx.time() - t0;
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let b = vec![1.0; local.len()];
        ctx.barrier();
        let t1 = ctx.time();
        let _x = dist_solve(ctx, &local, &rf, &plan, &b);
        ctx.barrier();
        (t_factor, ctx.time() - t1, rf.stats.levels)
    });
    let tf = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let ts = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
    (tf, ts, out.results[0].2)
}

fn main() {
    let a = gen::laplace_3d(20, 20, 20);
    println!(
        "20^3 Laplacian: {} unknowns, {} nonzeros\n",
        a.n_rows(),
        a.nnz()
    );
    for opts in [IlutOptions::new(10, 1e-6), IlutOptions::star(10, 1e-6, 2)] {
        println!("{}:", opts.name());
        println!(
            "  {:>4} | {:>12} | {:>9} | {:>12} | {:>9} | {:>4}",
            "p", "factor (s)", "speedup", "solve (s)", "speedup", "q"
        );
        let mut base: Option<(f64, f64)> = None;
        for p in [2usize, 4, 8, 16, 32] {
            let (tf, ts, q) = measure(&a, p, &opts);
            let (bf, bs) = *base.get_or_insert((tf, ts));
            println!(
                "  {p:>4} | {tf:>12.4} | {:>8.2}x | {ts:>12.5} | {:>8.2}x | {q:>4}",
                bf / tf,
                bs / ts
            );
        }
        println!();
    }
    println!("(simulated Cray T3D seconds; ILUT* should scale further before the");
    println!(" interface work and its q synchronisation points dominate)");
}
