//! Quickstart: factor a convection–diffusion matrix with ILUT and solve
//! with preconditioned GMRES — the serial core of the library in ~30 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use pilut::core::precond::{DiagonalPreconditioner, IluPreconditioner, Preconditioner};
use pilut::core::serial::{ilut, IlutOptions};
use pilut::solver::gmres::{gmres, GmresOptions};
use pilut::sparse::gen;

fn main() {
    // -Δu + 10 u_x + 20 u_y on a 60x60 interior grid (3600 unknowns).
    let a = gen::convection_diffusion_2d(60, 60, 10.0, 20.0);
    println!("matrix: {} unknowns, {} nonzeros", a.n_rows(), a.nnz());

    // Manufactured solution x = 1, right-hand side b = A·1.
    let b = a.spmv_owned(&vec![1.0; a.n_rows()]);
    let opts = GmresOptions {
        restart: 10,
        rtol: 1e-7,
        max_matvecs: 5000,
    };

    // Baseline: diagonal (Jacobi) preconditioning.
    let diag = DiagonalPreconditioner::new(&a);
    let r0 = gmres(&a, &b, &diag, &opts);
    println!(
        "GMRES(10) + diagonal : {} matvecs, converged = {}",
        r0.matvecs, r0.converged
    );

    // ILUT(10, 1e-4): threshold dropping + per-row fill cap.
    let factors = ilut(&a, &IlutOptions::new(10, 1e-4)).expect("factorization failed");
    println!(
        "ILUT(10,1e-4)        : {} nonzeros in L+U ({:.2}x the matrix)",
        factors.nnz(),
        factors.nnz() as f64 / a.nnz() as f64
    );
    let pre = IluPreconditioner::with_label(factors, "ILUT(10,1e-4)");
    let r1 = gmres(&a, &b, &pre, &opts);
    println!(
        "GMRES(10) + {} : {} matvecs, converged = {}",
        pre.name(),
        r1.matvecs,
        r1.converged
    );
    println!(
        "speedup in iterations: {:.1}x",
        r0.matvecs as f64 / r1.matvecs as f64
    );
}
