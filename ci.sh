#!/bin/sh
# Full local CI gate. Everything here runs offline with an empty cargo
# registry cache; crates/bench (criterion) is deliberately outside the
# workspace and outside this gate.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint"
cargo run -p xtask -- lint

echo "==> release build"
cargo build --workspace --release

echo "==> tests"
cargo test --workspace -q

echo "==> bench smoke"
cargo run -q -p xtask --release -- bench --quick --out target/bench_smoke.json
cargo run -q -p xtask --release -- bench-verify target/bench_smoke.json

echo "ci.sh: all green"
