#!/bin/sh
# Full local CI gate. Everything here runs offline with an empty cargo
# registry cache; crates/bench (criterion) is deliberately outside the
# workspace and outside this gate.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint"
cargo run -p xtask -- lint

echo "==> release build"
cargo build --workspace --release

echo "==> tests"
cargo test --workspace -q

echo "==> chaos (seeded fault-injection suite, quick)"
cargo run -q -p xtask --release -- chaos --quick

echo "==> bench smoke"
cargo run -q -p xtask --release -- bench --quick --out target/bench_smoke.json
cargo run -q -p xtask --release -- bench-verify target/bench_smoke.json

# Full-size re-run of every scenario, gated on the geometric mean of the
# min-time ratios. Tolerance is sized to the environment, not to ambition:
# the same binary measures ±10-15% per-scenario from code layout alone and
# ±20-30% on medians between quiet and loaded minutes of shared hardware,
# so this is a gross-regression tripwire; precise before/after numbers are
# taken on a quiet machine and recorded in EXPERIMENTS.md. (The committed
# quiet-run comparison for this tree: geomean -8.5% vs BENCH_pr2.json.)
echo "==> bench regression vs BENCH_pr2.json (full scenarios, geomean gate)"
cargo run -q -p xtask --release -- bench --out target/bench_compare.json --label ci
cargo run -q -p xtask --release -- bench-compare target/bench_compare.json BENCH_pr2.json \
    --tolerance 25 --geomean

echo "ci.sh: all green"
