#!/bin/sh
# Full local CI gate. Everything here runs offline with an empty cargo
# registry cache; crates/bench (criterion) is deliberately outside the
# workspace and outside this gate.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint"
cargo run -p xtask -- lint

echo "==> release build"
cargo build --workspace --release

echo "==> tests"
cargo test --workspace -q

echo "==> chaos (seeded fault-injection suite, quick)"
cargo run -q -p xtask --release -- chaos --quick

echo "==> chaos --recover (self-healing solve under kill/drop plans, quick)"
cargo run -q -p xtask --release -- chaos --recover --quick

echo "==> schedcheck (bitwise-determinism sanitizer, quick)"
cargo run -q -p xtask --release -- schedcheck --quick

echo "==> modelcheck (DPOR schedule-space exploration, quick)"
cargo run -q -p xtask --release -- modelcheck --quick

# ThreadSanitizer pass over the VM crate: the logical-clock machine is the
# only place in the workspace that touches raw threads, so it gets a real
# data-race check. BLOCKING: when the pinned nightly can run it (TSan needs
# -Z flags and a std rebuilt with the sanitizer, i.e. rust-src), any finding
# is red CI — no allowed-to-warn fallback. Environments missing the
# toolchain skip the stage loudly; they cannot turn a finding green.
# Pinned: validated on rustc 1.97.0-nightly (e50aa6fba 2026-05-19); TSan's
# -Z surface and std instrumentation drift between nightlies, so bumps to
# TSAN_TOOLCHAIN should re-validate before landing.
TSAN_TOOLCHAIN="${TSAN_TOOLCHAIN:-nightly}"
tsan_src="$(rustup run "$TSAN_TOOLCHAIN" rustc --print sysroot 2>/dev/null || true)/lib/rustlib/src/rust/library/Cargo.lock"
echo "==> tsan (crates/par, $TSAN_TOOLCHAIN, blocking when runnable)"
if [ -f "$tsan_src" ]; then
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
        cargo "+$TSAN_TOOLCHAIN" test -p pilut-par -Zbuild-std \
        --target x86_64-unknown-linux-gnu -q
else
    echo "tsan: $TSAN_TOOLCHAIN lacks rust-src (std cannot be instrumented); stage skipped."
    echo "      enable with: rustup toolchain install nightly-2026-05-20 -c rust-src"
fi

# The smoke pass also exercises the scaling sweep end to end (tiny
# two-point curves) so the JSON writer's scaling section and its
# bench-verify validation stay covered; --slack 0 is the default but is
# spelled out because it is the contract — the delta-protocol byte
# predictions are exact, so zero divergence is the gate, not a wish.
# --profile-alloc runs the whole sweep under the counting allocator and
# records per-region acquisition counts, which bench-verify gates: every
# steady-state replay region (trisolve_replay, replay_halo, send_values,
# recv_values, gmres_inner — DESIGN §16.2) must report exactly 0
# acquisitions, same spirit as the slack-0 comm gate.
echo "==> bench smoke (incl. scaling curves + zero-steady-alloc gate)"
cargo run -q -p xtask --release -- bench --quick --scaling --profile-alloc \
    --out target/bench_smoke.json
cargo run -q -p xtask --release -- bench-verify target/bench_smoke.json --slack 0

# Full-size re-run of every scenario, gated on the geometric mean of the
# min-time ratios. The baseline is BENCH_pr9.json — the tree with the
# blocked storage layer, before the memory-plane audit landed. The
# baseline file is schema v1 (no alloc columns); bench-compare reads both
# schemas, compares on min times only, and the geomean gates the full
# scenario set. The fresh report is schema v2 and still passes
# bench-verify at zero slack, which now enforces both that every
# serial-named scenario put nothing on the wire and that every gated
# steady region performed zero heap acquisitions. Per-scenario numbers
# still swing ±10-15% from binary layout alone; the geomean over min
# times cancels that undirected noise, and precise before/after numbers
# live in EXPERIMENTS.md.
echo "==> bench regression vs BENCH_pr9.json (full scenarios, geomean gate)"
cargo run -q -p xtask --release -- bench --profile-alloc \
    --out target/bench_compare.json --label ci \
    --baseline BENCH_pr9.json
cargo run -q -p xtask --release -- bench-verify target/bench_compare.json --slack 0
cargo run -q -p xtask --release -- bench-compare target/bench_compare.json \
    --baseline BENCH_pr9.json --tolerance 5 --geomean

echo "ci.sh: all green"
