#!/bin/sh
# Full local CI gate. Everything here runs offline with an empty cargo
# registry cache; crates/bench (criterion) is deliberately outside the
# workspace and outside this gate.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> xtask lint"
cargo run -p xtask -- lint

echo "==> release build"
cargo build --workspace --release

echo "==> tests"
cargo test --workspace -q

echo "==> chaos (seeded fault-injection suite, quick)"
cargo run -q -p xtask --release -- chaos --quick

echo "==> schedcheck (bitwise-determinism sanitizer, quick)"
cargo run -q -p xtask --release -- schedcheck --quick

# ThreadSanitizer pass over the VM crate: the logical-clock machine is the
# only place in the workspace that touches raw threads, so it gets a real
# data-race check when a nightly toolchain is available. Allowed-to-warn:
# TSan needs -Z flags (nightly-only) and a std rebuilt with the sanitizer;
# environments without that toolchain skip, and a failing run is reported
# but does not gate — its findings land as issues, not as red CI.
echo "==> tsan (crates/par, nightly-gated, allowed to warn)"
if rustup toolchain list 2>/dev/null | grep -q nightly; then
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -p pilut-par -Zbuild-std --target x86_64-unknown-linux-gnu -q \
        || echo "tsan: reported findings or could not run (non-gating)"
else
    echo "tsan: no nightly toolchain installed, skipping (non-gating)"
fi

echo "==> bench smoke"
cargo run -q -p xtask --release -- bench --quick --out target/bench_smoke.json
cargo run -q -p xtask --release -- bench-verify target/bench_smoke.json

# Full-size re-run of every scenario, gated on the geometric mean of the
# min-time ratios. Tolerance is sized to the environment, not to ambition:
# the same binary measures ±10-15% per-scenario from code layout alone and
# ±20-30% on medians between quiet and loaded minutes of shared hardware,
# so this is a gross-regression tripwire; precise before/after numbers are
# taken on a quiet machine and recorded in EXPERIMENTS.md. The baseline is
# BENCH_pr4.json — the tree that introduced the vector-clock race detector
# must show no production-path regression against the tree before it
# (clocks are confined to checked mode; the bench runs unchecked).
echo "==> bench regression vs BENCH_pr4.json (full scenarios, geomean gate)"
cargo run -q -p xtask --release -- bench --out target/bench_compare.json --label ci
cargo run -q -p xtask --release -- bench-compare target/bench_compare.json BENCH_pr4.json \
    --tolerance 25 --geomean

echo "ci.sh: all green"
