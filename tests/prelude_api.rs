//! Smoke test of the one-import public API surface.

use pilut::prelude::*;

#[test]
fn the_whole_pipeline_is_reachable_from_the_prelude() {
    // Serial path.
    let a = gen::convection_diffusion_2d(10, 10, 5.0, 2.0);
    let stats = MatrixStats::of(&a);
    assert_eq!(stats.n, 100);
    let f = ilut(&a, &IlutOptions::new(6, 1e-3)).unwrap();
    let b = a.spmv_owned(&vec![1.0; 100]);
    let r = gmres(&a, &b, &IluPreconditioner::new(f), &GmresOptions::default());
    assert!(r.converged);

    // SPD path.
    let spd = gen::laplace_2d(8, 8);
    let ic = ic0(&spd).unwrap();
    let bs = spd.spmv_owned(&vec![2.0; 64]);
    let rc = cg(&spd, &bs, &IcPreconditioner::new(ic), &CgOptions::default());
    assert!(rc.converged);

    // Distributed path.
    let dm = DistMatrix::from_matrix(a.clone(), 2, 1);
    let out = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &IlutOptions::star(6, 1e-3, 2)).unwrap();
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let bl = vec![1.0; local.len()];
        dist_solve(ctx, &local, &rf, &plan, &bl).len()
    });
    assert_eq!(out.results.iter().sum::<usize>(), 100);

    // Assembly utility.
    let out2 = Machine::run_checked(2, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        par_ilut(ctx, &dm, &local, &IlutOptions::new(100, 0.0)).unwrap()
    });
    let asm = assemble_factors(&out2.results, 100);
    let x = asm.solve(&b);
    for xi in x {
        assert!((xi - 1.0).abs() < 1e-8);
    }
}
