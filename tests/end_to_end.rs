//! Cross-crate end-to-end tests: the full pipeline from matrix generation
//! through partitioning, parallel factorization, and distributed GMRES —
//! plus "shape" checks of the paper's headline claims at test scale.

use pilut::core::dist::op::{DistCsr, DistOperator};
use pilut::core::dist::DistMatrix;
use pilut::core::options::IlutOptions;
use pilut::core::parallel::par_ilut;
use pilut::core::precond::IluPreconditioner;
use pilut::core::serial::ilut;
use pilut::core::trisolve::{dist_solve, TrisolvePlan};
use pilut::par::{Machine, MachineModel};
use pilut::solver::dist_gmres::{dist_gmres, DistDiagonal, DistIlu, DistPrecond};
use pilut::solver::gmres::{gmres, GmresOptions};
use pilut::sparse::gen;

/// Distributed GMRES reaches the same solution as serial GMRES with the
/// matching serial preconditioner family.
#[test]
fn distributed_solution_matches_serial() {
    let a = gen::convection_diffusion_2d(16, 16, 6.0, 3.0);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let b = a.spmv_owned(&x_true);
    let gopts = GmresOptions {
        restart: 20,
        rtol: 1e-9,
        max_matvecs: 2000,
    };

    // Serial reference.
    let f = ilut(&a, &IlutOptions::new(8, 1e-3)).unwrap();
    let serial = gmres(&a, &b, &IluPreconditioner::new(f), &gopts);
    assert!(serial.converged);

    // Distributed run on 4 simulated processors.
    let dm = DistMatrix::from_matrix(a.clone(), 4, 29);
    let b2 = b.clone();
    let out = Machine::run_checked(4, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let mut op = DistCsr::new(ctx, &dm, &local);
        let rf = par_ilut(ctx, &dm, &local, &IlutOptions::new(8, 1e-3)).unwrap();
        let mut pre = DistIlu::new(ctx, &dm, &local, rf);
        let bl: Vec<f64> = local.nodes.iter().map(|&g| b2[g]).collect();
        let r = dist_gmres(ctx, &mut op, &local, &mut pre, &bl, &gopts);
        assert!(r.converged);
        (local.nodes.clone(), r.x_local)
    });
    let mut x = vec![0.0; n];
    for (nodes, xl) in out.results {
        for (g, v) in nodes.into_iter().zip(xl) {
            x[g] = v;
        }
    }
    for i in 0..n {
        assert!(
            (x[i] - x_true[i]).abs() < 1e-5,
            "row {i}: distributed {} vs true {}",
            x[i],
            x_true[i]
        );
    }
}

/// Paper shape: the simulated factorization time decreases with p (it's the
/// point of the paper) at a fixed problem size, for both ILUT and ILUT*.
#[test]
fn simulated_time_shrinks_with_processors() {
    let a = gen::laplace_3d(14, 14, 14);
    for opts in [IlutOptions::new(5, 1e-2), IlutOptions::star(5, 1e-2, 2)] {
        let time = |p: usize| {
            let dm = DistMatrix::from_matrix(a.clone(), p, 17);
            let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
                let local = dm.local_view(ctx.rank());
                par_ilut(ctx, &dm, &local, &opts).unwrap();
                ctx.barrier();
                ctx.time()
            });
            out.sim_time
        };
        let t2 = time(2);
        let t8 = time(8);
        assert!(
            t8 < t2 * 0.7,
            "{}: no speedup from 2 to 8 ranks ({t2} vs {t8})",
            opts.name()
        );
    }
}

/// Paper shape (§4.2/§6): at a small threshold, ILUT* is at least as fast
/// as ILUT in simulated time, and needs no more independent sets.
#[test]
fn ilut_star_dominates_at_small_threshold() {
    let a = gen::laplace_3d(12, 12, 12);
    let p = 8;
    let run = |opts: IlutOptions| {
        let dm = DistMatrix::from_matrix(a.clone(), p, 17);
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
            ctx.barrier();
            (ctx.time(), rf.stats.levels)
        });
        (out.sim_time, out.results[0].1)
    };
    let (t_ilut, q_ilut) = run(IlutOptions::new(10, 1e-6));
    let (t_star, q_star) = run(IlutOptions::star(10, 1e-6, 2));
    assert!(q_star <= q_ilut, "q: {q_star} > {q_ilut}");
    assert!(t_star <= t_ilut * 1.05, "time: {t_star} > {t_ilut}");
}

/// Paper §5: a fwd+bwd substitution costs a small multiple of a matvec —
/// not orders of magnitude more — because the level structure keeps the
/// solves parallel.
#[test]
fn trisolve_cost_is_comparable_to_matvec() {
    let a = gen::laplace_3d(12, 12, 12);
    let p = 4;
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let opts = IlutOptions::star(5, 1e-4, 2);
    let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        let tplan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let mut op = DistCsr::new(ctx, &dm, &local);
        let b = vec![1.0; local.len()];
        ctx.barrier();
        let t0 = ctx.time();
        let _ = dist_solve(ctx, &local, &rf, &tplan, &b);
        ctx.barrier();
        let t1 = ctx.time();
        let _ = op.apply(ctx, &b);
        ctx.barrier();
        (t1 - t0, ctx.time() - t1)
    });
    let tri = out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let mv = out.results.iter().map(|r| r.1).fold(0.0, f64::max);
    assert!(tri > mv, "a two-sweep solve must cost more than one matvec");
    assert!(
        tri < 25.0 * mv,
        "trisolve {tri} vs matvec {mv}: solves degenerated to serial"
    );
}

/// The diagonal baseline loses to parallel ILUT end to end (paper Table 3).
#[test]
fn parallel_ilut_preconditioning_beats_diagonal_end_to_end() {
    let a = gen::fem_torso(14, 9);
    let p = 4;
    let dm = DistMatrix::from_matrix(a.clone(), p, 17);
    let gopts = GmresOptions {
        restart: 10,
        rtol: 1e-7,
        max_matvecs: 4000,
    };
    let run = |use_ilut: bool| {
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), |ctx| {
            let local = dm.local_view(ctx.rank());
            let mut op = DistCsr::new(ctx, &dm, &local);
            let ones = vec![1.0; local.len()];
            let b = op.apply(ctx, &ones);
            let mut pre: Box<dyn DistPrecond> = if use_ilut {
                let rf = par_ilut(ctx, &dm, &local, &IlutOptions::new(10, 1e-4)).unwrap();
                Box::new(DistIlu::new(ctx, &dm, &local, rf))
            } else {
                Box::new(DistDiagonal::new(&dm, &local))
            };
            let r = dist_gmres(ctx, &mut op, &local, pre.as_mut(), &b, &gopts);
            (r.matvecs, r.converged)
        });
        out.results[0]
    };
    let (nmv_diag, _) = run(false);
    let (nmv_ilut, conv_ilut) = run(true);
    assert!(conv_ilut);
    assert!(
        nmv_ilut * 2 < nmv_diag,
        "ILUT NMV {nmv_ilut} not clearly better than diagonal {nmv_diag}"
    );
}
