//! End-to-end blocked path through the public facade: supernode-guided
//! block-size selection, BCSR as the GMRES operator, and the blocked ILUT
//! factors as the preconditioner.

use pilut::prelude::*;

#[test]
fn gmres_over_bcsr_with_blocked_ilut_matches_csr() {
    let a = gen::convection_diffusion_2d(20, 20, 10.0, 20.0);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + ((i % 7) as f64) * 0.5).collect();
    let rhs = a.spmv_owned(&x_true);
    let opts = GmresOptions {
        restart: 20,
        rtol: 1e-10,
        ..Default::default()
    };

    // Scalar reference path.
    let sf = ilut(&a, &IlutOptions::new(10, 1e-4)).unwrap();
    let reference = gmres(&a, &rhs, &IluPreconditioner::new(sf), &opts);
    assert!(reference.converged, "scalar path must converge");

    // Blocked path: detection picks the block size, BCSR is the operator,
    // blocked ILUT the preconditioner.
    let b = suggest_block_size(&a, &[2, 4], 0.25);
    assert!(b >= 2, "banded stencil should support blocking, got b={b}");
    let ab = BcsrMatrix::from_csr(&a, b);
    let bf = block_ilut(&ab, &IlutOptions::new(10, 1e-4)).unwrap();
    let precond = BlockIluPreconditioner::new(bf);
    assert_eq!(precond.name(), format!("BILU({b})"));
    let blocked = gmres(&ab, &rhs, &precond, &opts);
    assert!(blocked.converged, "blocked path must converge");
    assert!(
        blocked.matvecs <= 3 * reference.matvecs + 10,
        "blocked path needs {} matvecs vs scalar {}",
        blocked.matvecs,
        reference.matvecs
    );
    for (x, t) in blocked.x.iter().zip(&x_true) {
        assert!((x - t).abs() < 1e-6, "solution off: {x} vs {t}");
    }
}

#[test]
fn storage_generic_consumers_see_one_matrix() {
    // The same generic routine runs over CSR and BCSR through the trait.
    fn frob_via_trait(m: &dyn SparseStorage) -> f64 {
        let mut s = 0.0;
        for i in 0..m.n_rows() {
            m.for_each_row_entry(i, &mut |_, v| s += v * v);
        }
        s.sqrt()
    }
    let a = gen::laplace_2d(9, 9);
    let blocked = BcsrMatrix::from_csr(&a, 4);
    let (fa, fb) = (frob_via_trait(&a), frob_via_trait(&blocked));
    assert!((fa - fb).abs() < 1e-12);
}
