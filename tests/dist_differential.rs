//! Differential sweep: every distributed kernel against its serial
//! reference, across partition seeds and machine sizes `p ∈ {1, 2, 4, 8}`.
//!
//! Besides numerical parity, each sweep checks the data plane's per-tag
//! traffic counters: user-tag traffic must be exactly zero on one rank
//! (nothing is remote) and strictly positive wherever a partition has
//! interfaces — a regression guard for both over- and under-communication.

use pilut::core::dist::exchange::tags;
use pilut::core::dist::op::{DistCsr, DistOperator};
use pilut::core::dist::DistMatrix;
use pilut::core::options::IlutOptions;
use pilut::core::parallel::par_ilut;
use pilut::core::trisolve::{dist_solve, TrisolvePlan};
use pilut::par::{Machine, MachineModel, MachineStats};
use pilut::solver::dist_gmres::{dist_gmres, DistIlu};
use pilut::solver::gmres::{gmres, GmresOptions};
use pilut::sparse::{gen, CooMatrix};

const SIZES: [usize; 4] = [1, 2, 4, 8];

/// Scatter a global vector into rank order, run the distributed kernel,
/// and gather the per-rank pieces back into a global vector.
fn gather(n: usize, pieces: Vec<(Vec<usize>, Vec<f64>)>) -> Vec<f64> {
    let mut x = vec![f64::NAN; n];
    for (nodes, xl) in pieces {
        for (g, v) in nodes.into_iter().zip(xl) {
            x[g] = v;
        }
    }
    assert!(x.iter().all(|v| v.is_finite()), "rows left unassigned");
    x
}

/// Asserts the p=1 / p>1 traffic invariant for one user tag.
fn check_tag(stats: &MachineStats, tag: u64, p: usize, what: &str) {
    let (msgs, bytes) = stats.tag_totals(tag);
    if p == 1 {
        assert_eq!((msgs, bytes), (0, 0), "{what}: traffic on a single rank");
    } else {
        assert!(msgs > 0, "{what}: no messages at p={p}");
        assert!(bytes > 0, "{what}: no bytes at p={p}");
    }
}

/// Distributed SpMV equals the serial product for every machine size and
/// partition seed, and SpMV-tagged traffic appears exactly when p > 1.
#[test]
fn spmv_matches_serial_across_sizes_and_seeds() {
    let a = gen::convection_diffusion_2d(12, 12, 4.0, -1.5);
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
    let y_ref = a.spmv_owned(&x);
    for p in SIZES {
        for seed in [3, 29, 91] {
            let dm = DistMatrix::from_matrix(a.clone(), p, seed);
            let x2 = x.clone();
            let out = Machine::run_checked(p, MachineModel::cray_t3d(), move |ctx| {
                let local = dm.local_view(ctx.rank());
                let mut op = DistCsr::new(ctx, &dm, &local);
                let xl: Vec<f64> = local.nodes.iter().map(|&g| x2[g]).collect();
                let y = op.apply(ctx, &xl);
                (local.nodes.clone(), y)
            });
            let y = gather(n, out.results);
            for i in 0..n {
                assert!(
                    (y[i] - y_ref[i]).abs() < 1e-12,
                    "spmv p={p} seed={seed} row {i}: {} vs {}",
                    y[i],
                    y_ref[i]
                );
            }
            check_tag(&out.stats, tags::SPMV, p, "spmv");
        }
    }
}

/// With a complete (no-drop) parallel factorization, the distributed
/// forward+backward solve inverts `A` exactly — so the gathered solution
/// must match the vector the right-hand side was manufactured from, for
/// every machine size. Per-level sweep traffic appears exactly when p > 1.
#[test]
fn complete_lu_trisolve_recovers_truth_across_sizes() {
    let a = gen::fem_torso(10, 4);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 3) % 5) as f64).collect();
    let b_global = a.spmv_owned(&x_true);
    let opts = IlutOptions::new(n, 0.0);
    for p in SIZES {
        let dm = DistMatrix::from_matrix(a.clone(), p, 13);
        let b2 = b_global.clone();
        let opts2 = opts.clone();
        let out = Machine::run_checked(p, MachineModel::cray_t3d(), move |ctx| {
            let local = dm.local_view(ctx.rank());
            let rf = par_ilut(ctx, &dm, &local, &opts2).unwrap();
            let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
            let b: Vec<f64> = local.nodes.iter().map(|&g| b2[g]).collect();
            let x = dist_solve(ctx, &local, &rf, &plan, &b);
            (local.nodes.clone(), x)
        });
        let x = gather(n, out.results);
        for i in 0..n {
            assert!(
                (x[i] - x_true[i]).abs() < 1e-7,
                "trisolve p={p} row {i}: {} vs {}",
                x[i],
                x_true[i]
            );
        }
        // The two sweep directions ship values only across interfaces.
        let (fwd, fb) = out.stats.tag_totals(tags::FWD);
        let (bwd, bb) = out.stats.tag_totals(tags::BWD);
        if p == 1 {
            assert_eq!((fwd, fb, bwd, bb), (0, 0, 0, 0), "sweep traffic at p=1");
        } else {
            assert!(fwd + bwd > 0, "no sweep messages at p={p}");
        }
        check_tag(&out.stats, tags::UROWS, p, "urows");
    }
}

/// Distributed ILUT-preconditioned GMRES lands on the same solution as the
/// serial path for every machine size and partition seed.
#[test]
fn dist_gmres_matches_serial_across_sizes_and_seeds() {
    let a = gen::convection_diffusion_2d(14, 14, 5.0, 2.0);
    let n = a.n_rows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
    let b = a.spmv_owned(&x_true);
    let gopts = GmresOptions {
        restart: 20,
        rtol: 1e-10,
        max_matvecs: 3000,
    };
    let fopts = IlutOptions::new(8, 1e-3);
    // Serial reference: same solver family, serial factorization.
    let serial = {
        let f = pilut::core::serial::ilut(&a, &fopts).unwrap();
        let r = gmres(
            &a,
            &b,
            &pilut::core::precond::IluPreconditioner::new(f),
            &gopts,
        );
        assert!(r.converged, "serial reference did not converge");
        r.x
    };
    for p in SIZES {
        for seed in [17, 41] {
            let dm = DistMatrix::from_matrix(a.clone(), p, seed);
            let b2 = b.clone();
            let fopts2 = fopts.clone();
            let gopts2 = gopts.clone();
            let out = Machine::run_checked(p, MachineModel::cray_t3d(), move |ctx| {
                let local = dm.local_view(ctx.rank());
                let mut op = DistCsr::new(ctx, &dm, &local);
                let rf = par_ilut(ctx, &dm, &local, &fopts2).unwrap();
                let mut pre = DistIlu::new(ctx, &dm, &local, rf);
                let bl: Vec<f64> = local.nodes.iter().map(|&g| b2[g]).collect();
                let r = dist_gmres(ctx, &mut op, &local, &mut pre, &bl, &gopts2);
                assert!(r.converged, "dist gmres did not converge");
                (local.nodes.clone(), r.x_local)
            });
            let x = gather(n, out.results);
            for i in 0..n {
                assert!(
                    (x[i] - serial[i]).abs() < 1e-6,
                    "gmres p={p} seed={seed} row {i}: {} vs {}",
                    x[i],
                    serial[i]
                );
            }
            check_tag(&out.stats, tags::SPMV, p, "gmres spmv");
        }
    }
}

/// The full pipeline survives more ranks than occupied partitions: at
/// p=8 with a 5-row chain, three ranks own nothing and every collective
/// and replay must still line up.
#[test]
fn empty_ranks_run_the_full_pipeline() {
    // 5-node chain: -1 / 2 / -1.
    let mut coo = CooMatrix::new(5, 5);
    for i in 0..5usize {
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        coo.push(i, i, 2.0);
        if i < 4 {
            coo.push(i, i + 1, -1.0);
        }
    }
    let a = coo.to_csr();
    let x_true = vec![1.0, -2.0, 3.0, 0.5, -1.5];
    let b_global = a.spmv_owned(&x_true);
    let opts = IlutOptions::new(5, 0.0);
    let dm = DistMatrix::from_matrix(a, 8, 7);
    let out = Machine::run_checked(8, MachineModel::cray_t3d(), move |ctx| {
        let local = dm.local_view(ctx.rank());
        let rf = par_ilut(ctx, &dm, &local, &opts).unwrap();
        let plan = TrisolvePlan::build(ctx, &dm, &local, &rf);
        let b: Vec<f64> = local.nodes.iter().map(|&g| b_global[g]).collect();
        let x = dist_solve(ctx, &local, &rf, &plan, &b);
        (local.nodes.clone(), x)
    });
    let x = gather(5, out.results);
    for i in 0..5 {
        assert!(
            (x[i] - x_true[i]).abs() < 1e-10,
            "row {i}: {} vs {}",
            x[i],
            x_true[i]
        );
    }
}
