//! # pilut — Parallel Threshold-based ILU Factorization
//!
//! A from-scratch Rust reproduction of *"Parallel Threshold-based ILU
//! Factorization"* (George Karypis and Vipin Kumar, Supercomputing 1997):
//! the dual-threshold incomplete factorization **ILUT(m, t)**, the paper's
//! bounded-fill variant **ILUT\*(m, t, k)**, their distributed-memory
//! parallel formulations built on multilevel k-way graph partitioning and
//! Luby-style maximal independent sets, the matching parallel triangular
//! solves, and a restarted GMRES solver that consumes them as
//! preconditioners.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`sparse`] — CSR/COO matrices, the ILUT working row, generators, I/O;
//! * [`graph`] — multilevel k-way partitioning, Luby MIS, colouring;
//! * [`par`] — the SPMD message-passing virtual machine with a Cray-T3D
//!   logical-clock cost model (the paper's testbed, simulated);
//! * [`core`] — serial and parallel ILUT / ILUT\* / ILU(0) / ILU(k) and the
//!   parallel forward/backward substitutions;
//! * [`solver`] — GMRES(restart), serial and distributed.
//!
//! ## Quickstart
//!
//! ```
//! use pilut::sparse::gen;
//! use pilut::core::serial::{ilut, IlutOptions};
//! use pilut::solver::gmres::{gmres, GmresOptions};
//! use pilut::core::precond::IluPreconditioner;
//!
//! // A small convection–diffusion problem.
//! let a = gen::convection_diffusion_2d(20, 20, 10.0, 20.0);
//! let b = a.spmv_owned(&vec![1.0; a.n_rows()]);
//!
//! // Factor with ILUT(m = 10, t = 1e-4) and solve with GMRES(10).
//! let factors = ilut(&a, &IlutOptions::new(10, 1e-4)).unwrap();
//! let precond = IluPreconditioner::new(factors);
//! let out = gmres(&a, &b, &precond, &GmresOptions { restart: 10, ..Default::default() });
//! assert!(out.converged);
//! ```

pub use pilut_core as core;
pub use pilut_graph as graph;
pub use pilut_par as par;
pub use pilut_solver as solver;
pub use pilut_sparse as sparse;

/// Everything a typical application needs, in one import:
/// `use pilut::prelude::*;`
pub mod prelude {
    pub use pilut_core::dist::exchange::{CommPlan, DistVector};
    pub use pilut_core::dist::op::{DistCsr, DistOperator, LinOp};
    pub use pilut_core::dist::spmv::{dist_spmv, SpmvPlan};
    pub use pilut_core::dist::{DistMatrix, Distribution, LocalView};
    pub use pilut_core::options::{FactorError, IlutOptions};
    pub use pilut_core::parallel::{assemble_factors, par_ilu0, par_ilut, RankFactors};
    pub use pilut_core::precond::{
        BlockIluPreconditioner, DiagonalPreconditioner, IdentityPreconditioner, IluPreconditioner,
        Preconditioner,
    };
    pub use pilut_core::serial::{block_ilut, ic0, ilu0, iluk, ilut};
    pub use pilut_core::trisolve::{dist_solve, TrisolvePlan};
    pub use pilut_core::{BlockLuFactors, LuFactors, SparseRow};
    pub use pilut_graph::{partition_kway, suggest_block_size, Graph, PartitionOptions};
    pub use pilut_par::{Ctx, Machine, MachineModel, Payload};
    pub use pilut_solver::dist_gmres::{dist_gmres, DistDiagonal, DistIlu, DistPrecond};
    pub use pilut_solver::gmres::{gmres, GmresOptions};
    pub use pilut_solver::{cg, CgOptions, IcPreconditioner};
    pub use pilut_sparse::{
        gen, io, BcsrMatrix, CooMatrix, CsrMatrix, MatrixStats, Permutation, SparseStorage,
    };
}
