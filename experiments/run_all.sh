#!/bin/bash
# Regenerates every recorded experiment. Scales chosen so the whole script
# completes in tens of minutes on a laptop; see EXPERIMENTS.md.
set -x
BIN=target/release
PILUT_SCALE=0.5 $BIN/table1 > experiments/table1.txt 2> experiments/table1.log
PILUT_SCALE=0.25 $BIN/table2 > experiments/table2.txt 2> experiments/table2.log
PILUT_SCALE=0.25 PILUT_MAX_NMV=800 $BIN/table3 > experiments/table3.txt 2> experiments/table3.log
PILUT_SCALE=0.15 $BIN/fig4_speedup_g40 > experiments/fig4.txt 2> experiments/fig4.log
PILUT_SCALE=0.15 $BIN/fig5_speedup_torso > experiments/fig5.txt 2> experiments/fig5.log
PILUT_SCALE=0.15 $BIN/fig6_speedup_trisolve > experiments/fig6.txt 2> experiments/fig6.log
$BIN/fig1_coloring > experiments/fig1.txt 2>&1
$BIN/fig2_mis_trace > experiments/fig2.txt 2>&1
$BIN/fig3_structure > experiments/fig3.txt 2>&1
PILUT_SCALE=0.15 $BIN/ablation_comm > experiments/ablation_comm.txt 2> experiments/ablation_comm.log
PILUT_SCALE=0.15 $BIN/baseline_ilu0 > experiments/baseline_ilu0.txt 2> experiments/baseline_ilu0.log
PILUT_SCALE=0.15 $BIN/ablation_partition > experiments/ablation_partition.txt 2> experiments/ablation_partition.log
echo ALL_DONE
